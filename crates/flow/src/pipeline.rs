//! The unified end-to-end RAPIDS flow.
//!
//! Every consumer of the workspace — the examples, the integration tests,
//! the Table 1 harness — used to hand-wire the same five stages:
//! resolve a circuit, map it onto the 0.35 µm library, place it, run static
//! timing analysis, then run one of the paper's three optimizers.  The
//! [`Pipeline`] owns that sequence behind one configurable call:
//!
//! ```
//! use rapids_flow::{CircuitSource, Pipeline, PipelineConfig};
//! use rapids_core::OptimizerKind;
//!
//! let pipeline = Pipeline::fast();
//! let report = pipeline
//!     .run_kind(CircuitSource::suite("c432"), OptimizerKind::Combined)
//!     .unwrap();
//! assert!(report.outcome.final_delay_ns <= report.initial_delay_ns + 1e-9);
//! ```
//!
//! The flow is split at the natural reuse seam: [`Pipeline::prepare`] runs
//! the placement-invariant front half (generate → map → place → STA) and
//! returns a [`PreparedDesign`]; [`Pipeline::optimize`] runs one optimizer
//! against it.  Sharing one `PreparedDesign` across several
//! [`OptimizerKind`]s is exactly the paper's experimental setup (the three
//! optimizers must see the *same* placement), and is packaged as
//! [`Pipeline::compare_optimizers`].

use std::time::Instant;

use rapids_celllib::Library;
use rapids_circuits::{benchmark, map_to_library};
use rapids_core::{CancelToken, OptimizationOutcome, Optimizer, OptimizerConfig, OptimizerKind};
use rapids_legalize::{
    legalize, refine_worst_slack, LegalizeConfig, LegalizeOutcome, RefineConfig, RefineOutcome,
    RowModel,
};
use rapids_netlist::{blif, NetlistError, Network};
use rapids_placement::{place, Placement, PlacerConfig};
use rapids_sim::check_equivalence_random;
use rapids_timing::{Sta, TimingConfig, TimingReport};

/// Where the pipeline's input circuit comes from.
#[derive(Debug, Clone)]
pub enum CircuitSource {
    /// A named benchmark from the 19-entry Table 1 suite
    /// ([`rapids_circuits::benchmark`]); arrives already mapped.
    Suite(String),
    /// A netlist that is already expressed in library gate types.
    Mapped(Network),
    /// A raw netlist that still needs technology mapping with the given
    /// maximum fan-in.
    Unmapped {
        /// The raw network.
        network: Network,
        /// Maximum fan-in allowed after mapping.
        max_fanin: usize,
    },
    /// BLIF text, parsed then mapped with the given maximum fan-in.
    Blif {
        /// BLIF source text ([`rapids_netlist::blif`] dialect).
        text: String,
        /// Maximum fan-in allowed after mapping.
        max_fanin: usize,
    },
    /// A BLIF file on disk, read via [`rapids_netlist::blif::parse_file`]
    /// then mapped with the given maximum fan-in.  Read errors surface as
    /// [`PipelineError::Netlist`] carrying the path.
    BlifFile {
        /// Path of the `.blif` file.
        path: std::path::PathBuf,
        /// Maximum fan-in allowed after mapping.
        max_fanin: usize,
    },
}

impl CircuitSource {
    /// Convenience constructor for a Table 1 suite benchmark.
    pub fn suite(name: impl Into<String>) -> Self {
        CircuitSource::Suite(name.into())
    }

    /// Convenience constructor for a `.blif` file with the default fan-in
    /// bound used by [`PipelineConfig::default`].
    pub fn blif_file(path: impl Into<std::path::PathBuf>) -> Self {
        CircuitSource::BlifFile { path: path.into(), max_fanin: 4 }
    }
}

/// Everything the pipeline failed on.
#[derive(Debug)]
pub enum PipelineError {
    /// The named benchmark is not part of the Table 1 suite.
    UnknownBenchmark(String),
    /// Parsing or mapping the input netlist failed.
    Netlist(NetlistError),
    /// The post-optimization safety net found a functional difference — the
    /// rewiring/sizing engine produced a wrong network.
    EquivalenceBroken {
        /// Design name.
        name: String,
        /// The optimizer that broke it.
        kind: OptimizerKind,
        /// The failing input vector, when the net that fired produces one
        /// (both nets do: the SAT net extracts it from the miter model and
        /// cross-confirms it on the simulator; the simulation net surfaces
        /// the failing pattern directly).
        counterexample: Option<rapids_cec::Counterexample>,
    },
    /// The SAT safety net could not decide the check (cancelled or over its
    /// conflict budget) — the result network is *not* known wrong, but the
    /// pipeline refuses to hand it out unverified.
    EquivalenceUnresolved {
        /// Design name.
        name: String,
        /// The optimizer whose result was being checked.
        kind: OptimizerKind,
        /// Why the check stopped.
        reason: String,
    },
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::UnknownBenchmark(name) => {
                write!(f, "unknown suite benchmark `{name}`")
            }
            PipelineError::Netlist(e) => write!(f, "netlist error: {e}"),
            PipelineError::EquivalenceBroken { name, kind, counterexample } => {
                write!(f, "optimizer {kind} broke functional equivalence on `{name}`")?;
                if let Some(cex) = counterexample {
                    write!(
                        f,
                        " (inputs {} drive output {} to {} instead of {})",
                        cex.input_bits(),
                        cex.output_index,
                        u8::from(cex.output_b),
                        u8::from(cex.output_a),
                    )?;
                }
                Ok(())
            }
            PipelineError::EquivalenceUnresolved { name, kind, reason } => {
                write!(f, "equivalence of optimizer {kind} on `{name}` undecided: {reason}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<NetlistError> for PipelineError {
    fn from(e: NetlistError) -> Self {
        PipelineError::Netlist(e)
    }
}

/// Which equivalence oracle guards the optimizer's output when
/// [`PipelineConfig::verify_equivalence`] is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SafetyNet {
    /// Random-vector simulation (`rapids-sim`): fast, but only samples the
    /// input space — a low-probability discrepancy can slip through.
    Simulation,
    /// SAT-based proof (`rapids-cec`): Tseitin-encode original and
    /// optimized network into a miter and decide it.  UNSAT *proves*
    /// equivalence on every input; SAT yields a concrete counterexample
    /// that is cross-confirmed on the simulator before being surfaced.
    Sat,
}

/// Configuration of the whole flow; one struct drives every stage.
///
/// The embedded [`OptimizerConfig`] carries the optimizer-side knobs; the
/// ones most often flipped from here are
/// `optimizer.include_inverting_swaps` (legalized inverting/ES swaps, also
/// exposed as `table1 --es`) and `optimizer.kind` (which
/// [`Pipeline::run`] uses).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Placer configuration.
    pub placer: PlacerConfig,
    /// Legalization / detailed-placement stage configuration.  Disabled by
    /// default (the stage is then completely inert and the flow's output is
    /// bit-identical to the pre-legalization behavior); enable it to run
    /// the Abacus legalizer plus the timing-driven refinement after
    /// placement and to let the optimizer nudge accepted ES inverters into
    /// genuinely free row slots (`table1 --legalize`).
    pub legalize: LegalizeConfig,
    /// Timing model configuration.
    pub timing: TimingConfig,
    /// Optimizer configuration; its `kind` is what [`Pipeline::run`] uses
    /// and what the `run_kind`/`compare_optimizers` entry points override.
    pub optimizer: OptimizerConfig,
    /// Placement seed, kept fixed so optimizer variants see the same
    /// placement (the paper's setup).
    pub seed: u64,
    /// Fan-in bound used when a [`CircuitSource`] needs technology mapping.
    pub map_max_fanin: usize,
    /// Run an equivalence check after every optimization and fail the
    /// pipeline if it is violated.  Which check runs is picked by
    /// [`PipelineConfig::safety_net`].
    pub verify_equivalence: bool,
    /// Which safety net guards the optimizer when `verify_equivalence` is
    /// on: random-vector simulation (fast, probabilistic) or a SAT proof
    /// (`rapids-cec`; UNSAT is a proof of equivalence, SAT surfaces a
    /// simulator-confirmed counterexample).
    pub safety_net: SafetyNet,
    /// Number of random vectors for the simulation safety net.
    pub verification_vectors: usize,
    /// Worker threads (1 = fully sequential).  Forwarded to the optimizer's
    /// candidate scoring, and [`Pipeline::compare_optimizers`] additionally
    /// runs the three optimizer kinds concurrently when `threads > 1`.
    /// What every thread count guarantees is stated once in
    /// [`rapids_sizing::parallel`] — the `threads` determinism contract.
    pub threads: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            // Pad-limited die (low row utilization): wire lengths reach the
            // millimetre range, so interconnect is a first-order term of the
            // critical path — the regime the paper's experiments target.
            placer: PlacerConfig { utilization: 0.15, ..PlacerConfig::default() },
            legalize: LegalizeConfig::default(),
            timing: TimingConfig::default(),
            optimizer: OptimizerConfig::default(),
            seed: 2000,
            map_max_fanin: 4,
            verify_equivalence: false,
            safety_net: SafetyNet::Simulation,
            verification_vectors: 1024,
            threads: 1,
        }
    }
}

impl PipelineConfig {
    /// Reduced-effort configuration for tests and smoke benchmarks.
    pub fn fast() -> Self {
        PipelineConfig {
            placer: PlacerConfig::fast(),
            optimizer: OptimizerConfig::fast(OptimizerKind::Combined),
            ..Self::default()
        }
    }
}

/// Wall-clock cost of the front half of the flow, per stage.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Resolving / generating / parsing the circuit, seconds.
    pub generate_s: f64,
    /// Technology mapping (zero when the source was already mapped), seconds.
    pub map_s: f64,
    /// Placement, seconds.
    pub place_s: f64,
    /// Legalization + timing-driven refinement (zero when the stage is
    /// disabled), seconds.
    pub legalize_s: f64,
    /// Initial static timing analysis, seconds.
    pub sta_s: f64,
}

/// What the pipeline's legalize stage did to one design's placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LegalizationReport {
    /// The Abacus full-legalization outcome (displacement + HPWL deltas).
    pub legalize: LegalizeOutcome,
    /// The timing-driven refinement outcome, when the pass ran
    /// (`LegalizeConfig::refine_worst_k > 0`).
    pub refine: Option<RefineOutcome>,
    /// Total HPWL of the final (legalized + refined) placement, µm — the
    /// value surfaced as `hpwl_um` in the QoR reports.
    pub hpwl_um: f64,
}

impl LegalizationReport {
    /// Largest single-gate displacement the full legalizer applied, µm
    /// (refinement moves are separately bounded by
    /// `LegalizeConfig::refine_budget_um`).
    pub fn max_displacement_um(&self) -> f64 {
        self.legalize.max_displacement_um
    }
}

/// Output of the placement-invariant front half of the flow.
///
/// Holds everything an optimizer run needs; cloning the network per
/// optimizer kind is the caller-visible contract that lets several kinds be
/// compared on identical placements.
#[derive(Debug)]
pub struct PreparedDesign {
    /// Design name (from the suite entry or the netlist itself).
    pub name: String,
    /// The mapped, pre-optimization network.
    pub network: Network,
    /// The cell library every stage ran against.
    pub library: Library,
    /// The fixed placement (legalized + refined when the legalize stage is
    /// enabled).
    pub placement: Placement,
    /// What the legalize stage did (`None` while disabled).
    pub legalization: Option<LegalizationReport>,
    /// Row occupancy of `placement` (`None` while the legalize stage is
    /// disabled).  Shared read-only by every optimizer run against this
    /// design; each run clones it into a private working copy, exactly like
    /// the placement itself.
    pub rows: Option<RowModel>,
    /// STA of `network` on `placement`.
    pub initial_timing: TimingReport,
    /// Per-stage wall-clock cost.
    pub timings: StageTimings,
}

impl PreparedDesign {
    /// Critical-path delay before any optimization, ns.
    pub fn initial_delay_ns(&self) -> f64 {
        self.initial_timing.critical_delay_ns()
    }
}

/// Result of one full pipeline run (front half + one optimizer).
#[derive(Debug)]
pub struct PipelineReport {
    /// Design name.
    pub name: String,
    /// The optimizer that ran.
    pub kind: OptimizerKind,
    /// Critical-path delay before optimization, ns.
    pub initial_delay_ns: f64,
    /// The optimized network.
    pub network: Network,
    /// Full optimizer outcome (delays, area, wire length, swap counts,
    /// supergate statistics).
    pub outcome: OptimizationOutcome,
    /// Whether the post-optimization equivalence check ran (and passed —
    /// a failed check aborts the pipeline instead).
    pub equivalence_verified: bool,
    /// Whether equivalence was *proven* (the [`SafetyNet::Sat`] net ran and
    /// returned UNSAT), as opposed to sampled by random simulation.
    pub equivalence_proven: bool,
    /// What the legalize stage did to the shared placement (`None` while
    /// the stage is disabled).
    pub legalization: Option<LegalizationReport>,
    /// Per-stage cost of the shared front half.
    pub stage_timings: StageTimings,
}

impl PipelineReport {
    /// Delay improvement over the initial placement-only timing, %.
    pub fn delay_improvement_percent(&self) -> f64 {
        self.outcome.delay_improvement_percent()
    }

    /// A placement that covers the (possibly grown) optimized network:
    /// `base` — normally the `PreparedDesign`'s placement — extended with
    /// the overlay slots of every inverter the optimizer inserted.  With
    /// inverting swaps disabled this is just a clone of `base`.  Use it to
    /// re-time or further optimize [`PipelineReport::network`], whose gate
    /// count exceeds `base.len()` after applied ES swaps.
    pub fn grown_placement(&self, base: &Placement) -> Placement {
        let mut placement = base.clone();
        for &(gate, at) in &self.outcome.hosted_inverters {
            placement.host_at(gate, at);
        }
        placement
    }
}

/// Comparison of the paper's three optimizers on one shared placement —
/// the shape of one Table 1 row.
#[derive(Debug)]
pub struct FlowComparison {
    /// Design name.
    pub name: String,
    /// Mapped logic gate count.
    pub gate_count: usize,
    /// Critical-path delay after placement, before optimization, ns.
    pub initial_delay_ns: f64,
    /// `gsg` (rewiring-only) report.
    pub rewiring: PipelineReport,
    /// `GS` (sizing-only) report.
    pub sizing: PipelineReport,
    /// `gsg+GS` (combined) report.
    pub combined: PipelineReport,
    /// The shared placement all three optimizers were scored on.  Kept on
    /// the comparison so long-running callers (the serve layer) can re-time
    /// or re-optimize any of the three result networks without re-running
    /// [`Pipeline::prepare`]; see [`FlowComparison::grown_placement`].
    pub placement: Placement,
    /// What the legalize stage did to that placement (`None` while the
    /// stage is disabled) — the source of the `legalized` / `hpwl_um` /
    /// `max_displacement_um` QoR fields.
    pub legalization: Option<LegalizationReport>,
}

impl FlowComparison {
    /// The report for a given optimizer kind.
    pub fn report(&self, kind: OptimizerKind) -> &PipelineReport {
        match kind {
            OptimizerKind::Rewiring => &self.rewiring,
            OptimizerKind::Sizing => &self.sizing,
            OptimizerKind::Combined => &self.combined,
        }
    }

    /// A placement covering `kind`'s (possibly ES-grown) result network:
    /// the shared placement extended with the overlay slots of every
    /// inserted inverter ([`PipelineReport::grown_placement`] against
    /// [`FlowComparison::placement`]).
    pub fn grown_placement(&self, kind: OptimizerKind) -> Placement {
        self.report(kind).grown_placement(&self.placement)
    }
}

/// Shared tail of the two BLIF resolve arms: book the parse cost under
/// `generate_s`, technology-map under the fan-in bound, book that under
/// `map_s`, and keep the model name.
fn map_parsed(
    parsed: Network,
    max_fanin: usize,
    parse_start: Instant,
    timings: &mut StageTimings,
) -> Result<Network, PipelineError> {
    timings.generate_s = parse_start.elapsed().as_secs_f64();
    let start = Instant::now();
    let mut mapped = map_to_library(&parsed, max_fanin)?;
    mapped.set_name(parsed.name());
    timings.map_s = start.elapsed().as_secs_f64();
    Ok(mapped)
}

/// The unified generate → map → place → STA → optimize → report flow.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// A pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// A pipeline with the paper-fidelity default configuration.
    pub fn with_defaults() -> Self {
        Self::new(PipelineConfig::default())
    }

    /// A reduced-effort pipeline for tests and smoke runs.
    pub fn fast() -> Self {
        Self::new(PipelineConfig::fast())
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Stage 1+2: resolve `source` into a named, mapped network without
    /// placing it (examples that only need the netlist use this).
    pub fn build_network(&self, source: CircuitSource) -> Result<Network, PipelineError> {
        self.resolve(source, &mut StageTimings::default())
    }

    /// Resolves a source into a mapped network, booking the resolve/parse
    /// cost under `generate_s` and the technology-mapping cost under `map_s`.
    fn resolve(
        &self,
        source: CircuitSource,
        timings: &mut StageTimings,
    ) -> Result<Network, PipelineError> {
        let start = Instant::now();
        match source {
            CircuitSource::Suite(name) => {
                // Suite circuits generate *and* map internally; the whole
                // cost is generation from the caller's point of view.
                let network = benchmark(&name).ok_or(PipelineError::UnknownBenchmark(name))?;
                timings.generate_s = start.elapsed().as_secs_f64();
                Ok(network)
            }
            CircuitSource::Mapped(network) => {
                timings.generate_s = start.elapsed().as_secs_f64();
                Ok(network)
            }
            CircuitSource::Unmapped { network, max_fanin } => {
                timings.generate_s = start.elapsed().as_secs_f64();
                let start = Instant::now();
                let mut mapped = map_to_library(&network, max_fanin)?;
                mapped.set_name(network.name());
                timings.map_s = start.elapsed().as_secs_f64();
                Ok(mapped)
            }
            CircuitSource::Blif { text, max_fanin } => {
                let parsed = blif::parse_string(&text)?;
                map_parsed(parsed, max_fanin, start, timings)
            }
            CircuitSource::BlifFile { path, max_fanin } => {
                let parsed = blif::parse_file(&path)?;
                map_parsed(parsed, max_fanin, start, timings)
            }
        }
    }

    /// Stages 1–4: generate → map → place → STA, with per-stage timings.
    ///
    /// The returned [`PreparedDesign`] is the reuse seam of the flow: it is
    /// placement-invariant, so several optimizer kinds can be scored
    /// against the *same* placement — the paper's experimental setup.
    ///
    /// ```
    /// use rapids_flow::{CircuitSource, Pipeline};
    ///
    /// let design = Pipeline::fast().prepare(CircuitSource::suite("c432")).unwrap();
    /// assert_eq!(design.name, "c432");
    /// assert!(design.initial_delay_ns() > 0.0);
    /// ```
    pub fn prepare(&self, source: CircuitSource) -> Result<PreparedDesign, PipelineError> {
        let mut timings = StageTimings::default();
        let network = self.resolve(source, &mut timings)?;

        let library = Library::standard_035um();

        let start = Instant::now();
        let place_span = rapids_obs::span("stage.place");
        let mut placement = place(&network, &library, &self.config.placer, self.config.seed);
        drop(place_span);
        timings.place_s = start.elapsed().as_secs_f64();

        // The legalize stage: Abacus full legalization onto the row/site
        // grid, an occupancy model of the result, and the timing-driven
        // refinement of the worst-slack gates.  All three optimizer kinds
        // then score against this one final placement — the shared-placement
        // contract is unchanged, the placement is just legal now.
        let mut legalization = None;
        let mut rows = None;
        if self.config.legalize.enabled {
            let start = Instant::now();
            let _legalize_span = rapids_obs::span("stage.legalize");
            let outcome = legalize(&network, &library, &mut placement);
            let mut model = RowModel::build(&network, &library, &placement);
            let refine = (self.config.legalize.refine_worst_k > 0).then(|| {
                refine_worst_slack(
                    &network,
                    &library,
                    &mut placement,
                    &mut model,
                    &self.config.timing,
                    &RefineConfig {
                        worst_k: self.config.legalize.refine_worst_k,
                        displacement_budget_um: self.config.legalize.refine_budget_um,
                    },
                )
            });
            legalization = Some(LegalizationReport {
                legalize: outcome,
                refine,
                hpwl_um: placement.total_hpwl_um(&network),
            });
            rows = Some(model);
            timings.legalize_s = start.elapsed().as_secs_f64();
        }

        let start = Instant::now();
        let sta_span = rapids_obs::span("stage.sta");
        let initial_timing = Sta::analyze_with_threads(
            &network,
            &library,
            &placement,
            &self.config.timing,
            self.config.threads.max(1),
        );
        drop(sta_span);
        timings.sta_s = start.elapsed().as_secs_f64();

        Ok(PreparedDesign {
            name: network.name().to_string(),
            network,
            library,
            placement,
            legalization,
            rows,
            initial_timing,
            timings,
        })
    }

    /// Stage 5+6: run one optimizer kind against a prepared design and
    /// (optionally) verify functional equivalence of the result.
    ///
    /// The prepared design is borrowed immutably — each call clones its
    /// network, so any number of kinds can run against one `prepare` call:
    ///
    /// ```
    /// use rapids_core::OptimizerKind;
    /// use rapids_flow::{CircuitSource, Pipeline};
    ///
    /// let pipeline = Pipeline::fast();
    /// let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
    /// let gsg = pipeline.optimize(&design, OptimizerKind::Rewiring).unwrap();
    /// let gs = pipeline.optimize(&design, OptimizerKind::Sizing).unwrap();
    /// assert_eq!(gsg.initial_delay_ns, gs.initial_delay_ns); // same placement
    /// assert!(gsg.outcome.final_delay_ns <= gsg.initial_delay_ns + 1e-9);
    /// ```
    pub fn optimize(
        &self,
        design: &PreparedDesign,
        kind: OptimizerKind,
    ) -> Result<PipelineReport, PipelineError> {
        self.optimize_cancellable(design, kind, &CancelToken::new())
    }

    /// [`Pipeline::optimize`] with a cooperative cancellation token.
    ///
    /// The token is polled at optimizer pass boundaries; once cancelled, the
    /// run stops starting new passes and returns the best result reached so
    /// far (a valid, consistent network — just optimized with fewer passes).
    /// Callers that need a hard deadline pair this with a watchdog thread
    /// that cancels the token when the deadline expires.
    pub fn optimize_cancellable(
        &self,
        design: &PreparedDesign,
        kind: OptimizerKind,
        cancel: &CancelToken,
    ) -> Result<PipelineReport, PipelineError> {
        let mut working = design.network.clone();
        let optimizer_config = OptimizerConfig {
            kind,
            threads: self.config.optimizer.threads.max(self.config.threads),
            ..self.config.optimizer.clone()
        };
        let rows = if self.config.legalize.nudge_es { design.rows.as_ref() } else { None };
        let optimize_span = rapids_obs::span("stage.optimize");
        let outcome =
            Optimizer::new(optimizer_config).with_cancel(cancel.clone()).optimize_with_rows(
                &mut working,
                &design.library,
                &design.placement,
                rows,
                &self.config.timing,
            );
        drop(optimize_span);

        let mut equivalence_proven = false;
        if self.config.verify_equivalence {
            let _safety_span = rapids_obs::span("stage.safety_net");
            match self.config.safety_net {
                SafetyNet::Simulation => {
                    let verdict = check_equivalence_random(
                        &design.network,
                        &working,
                        self.config.verification_vectors,
                        self.config.seed ^ 0x5eed_cafe,
                    );
                    if let rapids_sim::EquivalenceResult::Mismatch {
                        output_index,
                        inputs,
                        output_a,
                        output_b,
                        ..
                    } = verdict
                    {
                        return Err(PipelineError::EquivalenceBroken {
                            name: design.name.clone(),
                            kind,
                            counterexample: Some(rapids_cec::Counterexample {
                                inputs,
                                output_index,
                                output_a,
                                output_b,
                            }),
                        });
                    } else if !verdict.is_equivalent() {
                        return Err(PipelineError::EquivalenceBroken {
                            name: design.name.clone(),
                            kind,
                            counterexample: None,
                        });
                    }
                }
                SafetyNet::Sat => {
                    let cec_config = rapids_cec::CecConfig {
                        seed: self.config.seed ^ 0x5eed_cafe,
                        cancel: Some(cancel.clone()),
                        ..rapids_cec::CecConfig::default()
                    };
                    match rapids_cec::check_equivalence(&design.network, &working, &cec_config) {
                        rapids_cec::CecResult::EquivalentProven => equivalence_proven = true,
                        rapids_cec::CecResult::NotEquivalent(cex) => {
                            // The checker already replayed the vector on the
                            // simulator to locate the differing output;
                            // cross-confirm once more against the whole
                            // output vector before surfacing it.
                            let sim_verdict = rapids_sim::Simulator::new(&design.network)
                                .simulate_bools(&design.network, &cex.inputs);
                            let sim_opt = rapids_sim::Simulator::new(&working)
                                .simulate_bools(&working, &cex.inputs);
                            debug_assert_ne!(
                                sim_verdict[cex.output_index], sim_opt[cex.output_index],
                                "CEC counterexample must replay on the simulator"
                            );
                            return Err(PipelineError::EquivalenceBroken {
                                name: design.name.clone(),
                                kind,
                                counterexample: Some(cex),
                            });
                        }
                        rapids_cec::CecResult::InterfaceMismatch { inputs, outputs } => {
                            return Err(PipelineError::EquivalenceUnresolved {
                                name: design.name.clone(),
                                kind,
                                reason: format!(
                                    "optimizer changed the interface: inputs {inputs:?}, outputs {outputs:?}"
                                ),
                            });
                        }
                        rapids_cec::CecResult::Aborted(reason) => {
                            return Err(PipelineError::EquivalenceUnresolved {
                                name: design.name.clone(),
                                kind,
                                reason,
                            });
                        }
                    }
                }
            }
            // Physical side of the safety net: a legalized flow must stay
            // overlap-free through optimization — the base placement is
            // legal and every surviving nudged inverter sits in a slot the
            // row model handed out.  Three genuine carve-outs: a nudge
            // that fell back to driver-stacking (a full die, recorded in
            // the outcome); inverters hosted with nudging *off*
            // (`nudge_es == false` stacks them on their drivers by
            // design); and runs that *resized* gates — an upsized cell is
            // physically wider, so sizing legitimately needs a
            // re-legalization pass, which the flow does not do yet (see
            // ROADMAP).  Rewiring and ES growth never change a footprint.
            if self.config.legalize.enabled
                && outcome.nudge_fallbacks == 0
                && outcome.gates_resized == 0
                && (self.config.legalize.nudge_es || outcome.inverting_swaps_applied == 0)
            {
                let mut grown = design.placement.clone();
                for &(inv, at) in &outcome.hosted_inverters {
                    grown.host_at(inv, at);
                }
                grown.assert_legal(&working, &design.library);
            }
        }

        Ok(PipelineReport {
            name: design.name.clone(),
            kind,
            initial_delay_ns: design.initial_delay_ns(),
            network: working,
            outcome,
            equivalence_verified: self.config.verify_equivalence,
            equivalence_proven,
            legalization: design.legalization,
            stage_timings: design.timings,
        })
    }

    /// The whole flow with the configured optimizer kind.
    pub fn run(&self, source: CircuitSource) -> Result<PipelineReport, PipelineError> {
        self.run_kind(source, self.config.optimizer.kind)
    }

    /// The whole flow with an explicit optimizer kind.
    pub fn run_kind(
        &self,
        source: CircuitSource,
        kind: OptimizerKind,
    ) -> Result<PipelineReport, PipelineError> {
        let design = self.prepare(source)?;
        self.optimize(&design, kind)
    }

    /// Runs `gsg`, `GS` and `gsg+GS` on one shared placement — one Table 1
    /// row's worth of experiments.  The three optimizer runs are independent
    /// (each clones the prepared network), so with `threads > 1` they execute
    /// on separate threads; the comparison is identical either way.
    ///
    /// ```
    /// use rapids_core::OptimizerKind;
    /// use rapids_flow::{CircuitSource, Pipeline};
    ///
    /// let row = Pipeline::fast().compare_optimizers(CircuitSource::suite("c432")).unwrap();
    /// assert_eq!(row.report(OptimizerKind::Rewiring).outcome.gates_resized, 0);
    /// assert!(row.combined.outcome.final_delay_ns <= row.initial_delay_ns + 1e-9);
    /// ```
    pub fn compare_optimizers(
        &self,
        source: CircuitSource,
    ) -> Result<FlowComparison, PipelineError> {
        self.compare_optimizers_cancellable(source, &CancelToken::new())
    }

    /// [`Pipeline::compare_optimizers`] with a cooperative cancellation
    /// token shared by all three optimizer runs (see
    /// [`Pipeline::optimize_cancellable`] for the cancellation semantics).
    pub fn compare_optimizers_cancellable(
        &self,
        source: CircuitSource,
        cancel: &CancelToken,
    ) -> Result<FlowComparison, PipelineError> {
        let design = self.prepare(source)?;
        let (rewiring, sizing, combined) = if self.config.threads > 1 {
            let design_ref = &design;
            std::thread::scope(|s| {
                let rewiring = s.spawn(|| {
                    self.optimize_cancellable(design_ref, OptimizerKind::Rewiring, cancel)
                });
                let sizing = s
                    .spawn(|| self.optimize_cancellable(design_ref, OptimizerKind::Sizing, cancel));
                let combined =
                    self.optimize_cancellable(design_ref, OptimizerKind::Combined, cancel);
                let rewiring = rewiring.join().expect("rewiring optimizer thread panicked");
                let sizing = sizing.join().expect("sizing optimizer thread panicked");
                (rewiring, sizing, combined)
            })
        } else {
            (
                self.optimize_cancellable(&design, OptimizerKind::Rewiring, cancel),
                self.optimize_cancellable(&design, OptimizerKind::Sizing, cancel),
                self.optimize_cancellable(&design, OptimizerKind::Combined, cancel),
            )
        };
        Ok(FlowComparison {
            name: design.name.clone(),
            gate_count: design.network.logic_gate_count(),
            initial_delay_ns: design.initial_delay_ns(),
            rewiring: rewiring?,
            sizing: sizing?,
            combined: combined?,
            legalization: design.legalization,
            placement: design.placement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder};

    fn tiny_mapped() -> Network {
        let mut b = NetworkBuilder::new("tiny");
        b.inputs(["a", "b", "c"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("f", GateType::Nand, &["n1", "c"]);
        b.output("f");
        b.finish().unwrap()
    }

    #[test]
    fn unknown_suite_name_is_reported() {
        let err = Pipeline::fast().run(CircuitSource::suite("not_a_benchmark")).unwrap_err();
        assert!(matches!(err, PipelineError::UnknownBenchmark(_)));
    }

    #[test]
    fn mapped_source_runs_end_to_end() {
        let report = Pipeline::fast()
            .run_kind(CircuitSource::Mapped(tiny_mapped()), OptimizerKind::Rewiring)
            .unwrap();
        assert_eq!(report.name, "tiny");
        assert!(report.initial_delay_ns > 0.0);
        assert!(report.outcome.final_delay_ns <= report.initial_delay_ns + 1e-9);
    }

    #[test]
    fn blif_source_round_trips_through_the_flow() {
        let text = blif::write_string(&tiny_mapped());
        let report = Pipeline::fast().run(CircuitSource::Blif { text, max_fanin: 4 }).unwrap();
        assert!(report.initial_delay_ns > 0.0);
    }

    #[test]
    fn legalize_stage_yields_a_legal_placement_through_es_growth() {
        let mut config = PipelineConfig::fast();
        config.legalize = LegalizeConfig::enabled();
        config.optimizer.include_inverting_swaps = true;
        config.verify_equivalence = true;
        let pipeline = Pipeline::new(config);
        let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
        design.placement.assert_legal(&design.network, &design.library);
        let legalization = design.legalization.expect("the enabled stage reports its work");
        assert!(legalization.legalize.moved_gates > 0);
        assert_eq!(legalization.legalize.unplaced_gates, 0);
        assert!(legalization.hpwl_um > 0.0);
        assert!(design.rows.is_some());
        // Optimize with ES growth: the equivalence + legality safety net
        // runs inside, and the grown placement stays overlap-free.
        let report = pipeline.optimize(&design, OptimizerKind::Rewiring).unwrap();
        assert!(report.outcome.inverting_swaps_applied > 0);
        assert_eq!(report.outcome.nudge_fallbacks, 0);
        report.grown_placement(&design.placement).assert_legal(&report.network, &design.library);
        assert!(report.legalization.is_some());
        assert!(report.stage_timings.legalize_s > 0.0);
    }

    #[test]
    fn legalized_flow_without_nudging_still_verifies() {
        // `nudge_es: false` stacks accepted inverters on their drivers by
        // design, so the legality half of the safety net must stand down
        // instead of panicking on the (intentional) overlap.
        let mut config = PipelineConfig::fast();
        config.legalize = LegalizeConfig { nudge_es: false, ..LegalizeConfig::enabled() };
        config.optimizer.include_inverting_swaps = true;
        config.verify_equivalence = true;
        let report = Pipeline::new(config)
            .run_kind(CircuitSource::suite("c432"), OptimizerKind::Rewiring)
            .unwrap();
        assert!(report.outcome.inverting_swaps_applied > 0, "ES swaps still fire");
        assert!(report.equivalence_verified);
    }

    #[test]
    fn disabled_legalize_stage_is_inert() {
        let pipeline = Pipeline::fast();
        let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
        assert!(design.legalization.is_none());
        assert!(design.rows.is_none());
        assert_eq!(design.timings.legalize_s, 0.0);
    }

    #[test]
    fn prepared_design_is_shared_across_kinds() {
        let pipeline = Pipeline::fast();
        let design = pipeline.prepare(CircuitSource::suite("c432")).unwrap();
        let a = pipeline.optimize(&design, OptimizerKind::Rewiring).unwrap();
        let b = pipeline.optimize(&design, OptimizerKind::Sizing).unwrap();
        assert_eq!(a.initial_delay_ns, b.initial_delay_ns);
    }
}
