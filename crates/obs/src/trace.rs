//! Scoped RAII span timers exported as Chrome trace-event JSON.
//!
//! The tracer is **off by default and free when off**: [`span`] checks
//! one relaxed atomic and returns a `None`-carrying guard — no
//! allocation, no clock read, no lock (pinned by the zero-overhead test
//! in `tests/integration_obs.rs`).  After [`install`], each guard records
//! its wall-clock interval on drop, tagged with a small per-thread id, so
//! nesting is recoverable purely from interval containment per thread.
//!
//! Spans measure; they never decide.  Nothing downstream may read a span
//! or the enabled flag to change behavior — that is what keeps traced and
//! untraced runs byte-identical.
//!
//! Export is the Chrome trace-event format (`{"traceEvents":[...]}`, all
//! complete `"ph":"X"` events, timestamps in microseconds), loadable in
//! Perfetto / `chrome://tracing` and checkable offline with the
//! `trace_check` binary.

use std::cell::Cell;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Cheap global gate; relaxed load on every span construction.
static ENABLED: AtomicBool = AtomicBool::new(false);

struct Sink {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

static SINK: OnceLock<Sink> = OnceLock::new();

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// 0 = not yet assigned; assigned lazily on the first recorded span.
    static TID: Cell<u32> = const { Cell::new(0) };
}

fn current_tid() -> u32 {
    TID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

/// One completed span: a closed wall-clock interval on one thread.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Span name (dotted, e.g. `"stage.sta"`).
    pub name: String,
    /// Small dense per-thread id (assigned in first-span order).
    pub tid: u32,
    /// Start, nanoseconds since [`install`].
    pub ts_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Turns the tracer on, creating the shared sink on first call.  Safe to
/// call more than once; the epoch is set by the first installation.
pub fn install() {
    SINK.get_or_init(|| Sink { epoch: Instant::now(), events: Mutex::new(Vec::new()) });
    ENABLED.store(true, Ordering::Release);
}

/// Turns the tracer back off.  Already-open spans discard themselves on
/// drop; buffered events stay until [`take_events`] drains them.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether spans currently record.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Drains and returns every buffered event (empty if never installed).
pub fn take_events() -> Vec<TraceEvent> {
    match SINK.get() {
        Some(sink) => std::mem::take(&mut *sink.events.lock().unwrap()),
        None => Vec::new(),
    }
}

enum SpanName {
    Static(&'static str),
    Owned(String),
}

struct ActiveSpan {
    name: SpanName,
    start: Instant,
}

/// RAII span guard: records the interval from construction to drop.
///
/// When the tracer is disabled the guard holds `None` — constructing and
/// dropping it does no work at all.
pub struct Span {
    active: Option<ActiveSpan>,
}

/// Opens a span with a static name.  The common form: free when the
/// tracer is off.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { active: None };
    }
    Span { active: Some(ActiveSpan { name: SpanName::Static(name), start: Instant::now() }) }
}

/// Opens a span with a lazily built dynamic name (`job:c432`).  The
/// closure runs — and allocates — only when the tracer is on.
#[inline]
pub fn span_owned(name: impl FnOnce() -> String) -> Span {
    if !is_enabled() {
        return Span { active: None };
    }
    Span { active: Some(ActiveSpan { name: SpanName::Owned(name()), start: Instant::now() }) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        // `disable()` between open and close drops the event, not the lock
        // discipline: the sink always exists once a span was ever active.
        if !is_enabled() {
            return;
        }
        let Some(sink) = SINK.get() else { return };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        let ts_ns = active.start.duration_since(sink.epoch).as_nanos() as u64;
        let name = match active.name {
            SpanName::Static(s) => s.to_string(),
            SpanName::Owned(s) => s,
        };
        sink.events.lock().unwrap().push(TraceEvent { name, tid: current_tid(), ts_ns, dur_ns });
    }
}

/// Renders events as Chrome trace-event JSON.  Events are sorted by
/// `(tid, start, -duration, name)` so parents precede their children and
/// the bytes are a pure function of the recorded intervals.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut order: Vec<&TraceEvent> = events.iter().collect();
    order.sort_by(|a, b| {
        (a.tid, a.ts_ns, std::cmp::Reverse(a.dur_ns), &a.name).cmp(&(
            b.tid,
            b.ts_ns,
            std::cmp::Reverse(b.dur_ns),
            &b.name,
        ))
    });
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in order.iter().enumerate() {
        let sep = if i + 1 < order.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"rapids\",\"ph\":\"X\",\
             \"ts\":{}.{:03},\"dur\":{}.{:03},\"pid\":1,\"tid\":{}}}{sep}",
            escape(&e.name),
            e.ts_ns / 1000,
            e.ts_ns % 1000,
            e.dur_ns / 1000,
            e.dur_ns % 1000,
            e.tid,
        );
    }
    out.push_str("]}\n");
    out
}

/// Drains the sink and writes the Chrome trace JSON to `path`.
///
/// # Errors
///
/// Propagates the underlying file write error.
pub fn write_chrome_trace(path: &Path) -> std::io::Result<()> {
    let events = take_events();
    std::fs::write(path, chrome_trace_json(&events))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The enabled flag and sink are process-global; tests that flip them
    /// serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = TEST_LOCK.lock().unwrap();
        disable();
        let before = take_events().len();
        {
            let _a = span("never");
            let _b = span_owned(|| panic!("closure must not run while disabled"));
        }
        assert_eq!(take_events().len(), 0, "no events buffered (drained {before} stale)");
    }

    #[test]
    fn spans_nest_by_containment_on_one_thread() {
        let _guard = TEST_LOCK.lock().unwrap();
        install();
        take_events();
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span_owned(|| format!("inner:{}", 7));
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        disable();
        let events = take_events();
        assert_eq!(events.len(), 2);
        let inner = events.iter().find(|e| e.name == "inner:7").unwrap();
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        assert_eq!(inner.tid, outer.tid);
        assert!(inner.ts_ns >= outer.ts_ns, "child starts inside parent");
        assert!(
            inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns,
            "child ends inside parent"
        );
    }

    #[test]
    fn chrome_json_sorts_parents_first_and_escapes() {
        let events = vec![
            TraceEvent { name: "child".into(), tid: 3, ts_ns: 1_500, dur_ns: 400 },
            TraceEvent { name: "pa\"rent".into(), tid: 3, ts_ns: 1_500, dur_ns: 2_000 },
            TraceEvent { name: "first-thread".into(), tid: 1, ts_ns: 9_999, dur_ns: 1 },
        ];
        let json = chrome_trace_json(&events);
        let lines: Vec<&str> = json.lines().collect();
        assert_eq!(lines[0], "{\"traceEvents\":[");
        assert!(lines[1].contains("first-thread"), "tid 1 sorts before tid 3");
        assert!(lines[2].contains("pa\\\"rent"), "longer event first at equal start");
        assert!(lines[2].contains("\"ts\":1.500,\"dur\":2.000"));
        assert!(lines[3].contains("\"child\""));
        assert_eq!(lines[4], "]}");
    }
}
