//! One leveled diagnostic sink for the whole stack.
//!
//! Library layers print progress and recovery summaries through
//! [`error!`](crate::error)/[`warn!`](crate::warn)/[`info!`](crate::info)/
//! [`debug!`](crate::debug) instead of raw `eprintln!`, so a binary flag
//! (`--quiet`) can silence the chatter in one place.  Messages pass
//! through **verbatim** — no timestamp, level tag, or prefix — because
//! several stderr lines are byte-for-byte CI contracts (the result-store
//! stats line, the serve summary); the sink filters, it never reformats.
//!
//! The default level is [`Level::Info`]; `Debug` lines are opt-in.

use std::sync::atomic::{AtomicU8, Ordering};

/// Severity, most severe first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Failures the caller cannot ignore; never silenced by `--quiet`.
    Error = 0,
    /// Something degraded but handled (a truncated store tail, a skipped
    /// file).
    Warn = 1,
    /// Progress and end-of-run summaries; the default ceiling.
    Info = 2,
    /// Chatty internals, off by default.
    Debug = 3,
}

static MAX_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the most verbose level that still prints.
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current ceiling.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Whether `level` currently prints.
#[inline]
pub fn enabled(level: Level) -> bool {
    level as u8 <= MAX_LEVEL.load(Ordering::Relaxed)
}

/// Prints `args` to stderr, verbatim plus a newline, if `level` clears
/// the ceiling.  Prefer the macros: their `format_args!` is built only
/// when the line will print.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("{args}");
    }
}

/// Logs at [`Level::Error`] (never silenced by `--quiet`).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`] (the default ceiling).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`] (off unless raised).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The ceiling is process-global; tests that move it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn default_ceiling_is_info() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_max_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }

    #[test]
    fn quiet_keeps_errors_only() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_max_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert_eq!(max_level(), Level::Error);
        set_max_level(Level::Info);
    }

    #[test]
    fn level_order_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
