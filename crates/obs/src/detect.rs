//! Online change detection over sampled series: one-sided CUSUM
//! detectors and SLO burn tracking.
//!
//! A [`Cusum`] watches one named series from the
//! [`Sampler`](crate::timeseries::Sampler) and accumulates the classic
//! one-sided statistic
//!
//! ```text
//! S ← max(0, S + (x − baseline − drift))
//! ```
//!
//! alarming when `S` exceeds `threshold`.  `drift` is the per-tick
//! excursion the detector forgives (sets the smallest shift it reacts
//! to); `threshold` trades detection delay against false alarms.  The
//! baseline is either [`Baseline::Fixed`] or learned as the mean of the
//! first N samples ([`Baseline::Warmup`] — no alarms until it settles).
//! On alarm the statistic resets (`reset_on_alarm`), so a persisting
//! shift re-alarms after another full climb rather than every tick.
//!
//! An [`SloTracker`] folds two counter-delta series (bad events, total
//! events) into a running burn fraction and alarms on the transition
//! into breach (`burn > target`).
//!
//! Both emit structured [`Alert`] records; everything here is a pure
//! function of the observed tick sequence, so under the manual-tick
//! contract alerts are byte-reproducible.

use crate::timeseries::number;

/// Where a [`Cusum`]'s reference level comes from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Baseline {
    /// A known reference level.
    Fixed(f64),
    /// Learn the mean of the first `N` observations, then freeze it.
    /// No alarms fire during warmup.
    Warmup(usize),
}

/// Knobs for one detector instance.
#[derive(Clone, Debug)]
pub struct CusumConfig {
    /// The series this detector consumes (e.g. `serve.job_us.p99`).
    pub series: String,
    /// Per-tick slack: excursions below `baseline + drift` don't
    /// accumulate.
    pub drift: f64,
    /// Alarm when the accumulated statistic exceeds this.
    pub threshold: f64,
    /// Reference level.
    pub baseline: Baseline,
    /// Reset the statistic to zero after alarming (default true).
    pub reset_on_alarm: bool,
}

impl CusumConfig {
    /// A detector with a fixed baseline and reset-on-alarm.
    pub fn fixed(series: &str, baseline: f64, drift: f64, threshold: f64) -> Self {
        CusumConfig {
            series: series.to_string(),
            drift,
            threshold,
            baseline: Baseline::Fixed(baseline),
            reset_on_alarm: true,
        }
    }

    /// A detector that learns its baseline from the first `warmup`
    /// observations.
    pub fn warmup(series: &str, warmup: usize, drift: f64, threshold: f64) -> Self {
        CusumConfig {
            series: series.to_string(),
            drift,
            threshold,
            baseline: Baseline::Warmup(warmup.max(1)),
            reset_on_alarm: true,
        }
    }
}

/// What kind of monitor fired an [`Alert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// A CUSUM statistic crossed its threshold.
    Cusum,
    /// An SLO burn fraction crossed its target.
    Slo,
}

impl AlertKind {
    fn as_str(self) -> &'static str {
        match self {
            AlertKind::Cusum => "cusum",
            AlertKind::Slo => "slo",
        }
    }
}

/// A structured record of one fired alarm.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// The series (or SLO name) that alarmed.
    pub series: String,
    /// The tick the alarm fired at.
    pub tick: u64,
    /// The statistic at firing time (CUSUM sum, or SLO burn fraction).
    pub statistic: f64,
    /// The reference the statistic was measured against (CUSUM baseline,
    /// or SLO target fraction).
    pub baseline: f64,
    /// Which monitor family fired.
    pub kind: AlertKind,
}

impl Alert {
    /// One JSON object, embeddable in a protocol line or journal entry:
    /// `{"kind":…,"series":…,"tick":…,"statistic":…,"baseline":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":\"{}\",\"series\":\"{}\",\"tick\":{},\"statistic\":{},\"baseline\":{}}}",
            self.kind.as_str(),
            escape(&self.series),
            self.tick,
            number(self.statistic),
            number(self.baseline),
        )
    }
}

/// A one-sided (upward) CUSUM detector over one series.
#[derive(Clone, Debug)]
pub struct Cusum {
    config: CusumConfig,
    sum: f64,
    /// `Some(level)` once the baseline is established.
    settled: Option<f64>,
    /// Warmup accumulator: (sum, seen).
    warmup: (f64, usize),
}

impl Cusum {
    /// A fresh detector; the statistic starts at zero.
    pub fn new(config: CusumConfig) -> Self {
        let settled = match config.baseline {
            Baseline::Fixed(b) => Some(b),
            Baseline::Warmup(_) => None,
        };
        Cusum { config, sum: 0.0, settled, warmup: (0.0, 0) }
    }

    /// The series this detector consumes.
    pub fn series(&self) -> &str {
        &self.config.series
    }

    /// The current statistic.
    pub fn statistic(&self) -> f64 {
        self.sum
    }

    /// The established baseline, if any (None during warmup).
    pub fn baseline(&self) -> Option<f64> {
        self.settled
    }

    /// Feeds one observation of this detector's series at `tick`;
    /// returns the alert if the statistic crossed the threshold.
    pub fn observe(&mut self, tick: u64, value: f64) -> Option<Alert> {
        let baseline = match self.settled {
            Some(b) => b,
            None => {
                let Baseline::Warmup(n) = self.config.baseline else { unreachable!() };
                self.warmup.0 += value;
                self.warmup.1 += 1;
                if self.warmup.1 < n {
                    return None;
                }
                let mean = self.warmup.0 / self.warmup.1 as f64;
                self.settled = Some(mean);
                // The settling observation is part of the baseline, not
                // an excursion from it.
                return None;
            }
        };
        self.sum = (self.sum + (value - baseline - self.config.drift)).max(0.0);
        if self.sum > self.config.threshold {
            let alert = Alert {
                series: self.config.series.clone(),
                tick,
                statistic: self.sum,
                baseline,
                kind: AlertKind::Cusum,
            };
            if self.config.reset_on_alarm {
                self.sum = 0.0;
            }
            return Some(alert);
        }
        None
    }
}

/// Knobs for one SLO.
#[derive(Clone, Debug)]
pub struct SloConfig {
    /// The SLO's name (used as the alert `series`).
    pub name: String,
    /// Counter-delta series counting budget violations.
    pub bad_series: String,
    /// Counter-delta series counting all events.
    pub total_series: String,
    /// Maximum acceptable `bad / total` fraction.
    pub target: f64,
}

/// Tracks one SLO's cumulative burn fraction, alarming on the
/// transition into breach.
#[derive(Clone, Debug)]
pub struct SloTracker {
    config: SloConfig,
    bad: f64,
    total: f64,
    breached: bool,
}

impl SloTracker {
    /// A fresh tracker with zero burn.
    pub fn new(config: SloConfig) -> Self {
        SloTracker { config, bad: 0.0, total: 0.0, breached: false }
    }

    /// The SLO name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The counter-delta series counting budget violations.
    pub fn bad_series(&self) -> &str {
        &self.config.bad_series
    }

    /// The counter-delta series counting all events.
    pub fn total_series(&self) -> &str {
        &self.config.total_series
    }

    /// Cumulative `bad / total` (0 while no events have been seen).
    pub fn burn(&self) -> f64 {
        if self.total > 0.0 {
            self.bad / self.total
        } else {
            0.0
        }
    }

    /// Whether the SLO is currently breached.
    pub fn breached(&self) -> bool {
        self.breached
    }

    /// Feeds one tick's deltas of the bad/total series; returns an alert
    /// exactly when the burn fraction first crosses the target (and
    /// re-arms if it later recovers below it).
    pub fn observe(&mut self, tick: u64, bad_delta: f64, total_delta: f64) -> Option<Alert> {
        self.bad += bad_delta.max(0.0);
        self.total += total_delta.max(0.0);
        let burn = self.burn();
        let over = self.total > 0.0 && burn > self.config.target;
        let fired = over && !self.breached;
        self.breached = over;
        if fired {
            return Some(Alert {
                series: self.config.name.clone(),
                tick,
                statistic: burn,
                baseline: self.config.target,
                kind: AlertKind::Slo,
            });
        }
        None
    }

    /// One JSON object describing the current state:
    /// `{"name":…,"bad":…,"total":…,"burn":…,"target":…,"breached":…}`.
    pub fn status_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"bad\":{},\"total\":{},\"burn\":{},\"target\":{},\"breached\":{}}}",
            escape(&self.config.name),
            number(self.bad),
            number(self.total),
            number(self.burn()),
            number(self.config.target),
            self.breached,
        )
    }
}

/// Escapes a name for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_series_never_alarms() {
        let mut d = Cusum::new(CusumConfig::fixed("lat", 100.0, 5.0, 50.0));
        for tick in 0..1000 {
            assert_eq!(d.observe(tick, 100.0), None);
            assert_eq!(d.statistic(), 0.0, "at-baseline samples accumulate nothing");
        }
        // Noise inside the drift allowance accumulates nothing either.
        for tick in 0..1000 {
            assert_eq!(d.observe(tick, 104.9), None);
        }
    }

    #[test]
    fn step_shift_alarms_after_the_expected_climb() {
        // Step from 100 to 120 with drift 5: each tick adds 15, so the
        // 50-threshold trips on the 4th shifted sample.
        let mut d = Cusum::new(CusumConfig::fixed("lat", 100.0, 5.0, 50.0));
        for tick in 0..10 {
            assert_eq!(d.observe(tick, 100.0), None);
        }
        let mut fired_at = None;
        for tick in 10..20 {
            if let Some(alert) = d.observe(tick, 120.0) {
                fired_at = Some((tick, alert));
                break;
            }
        }
        let (tick, alert) = fired_at.expect("a sustained shift must alarm");
        assert_eq!(tick, 13);
        assert_eq!(alert.kind, AlertKind::Cusum);
        assert_eq!(alert.series, "lat");
        assert_eq!(alert.statistic, 60.0);
        assert_eq!(alert.baseline, 100.0);
        assert_eq!(d.statistic(), 0.0, "reset on alarm");
        assert_eq!(
            alert.to_json(),
            "{\"kind\":\"cusum\",\"series\":\"lat\",\"tick\":13,\
             \"statistic\":60,\"baseline\":100}"
        );
    }

    #[test]
    fn warmup_learns_the_baseline_mean() {
        let mut d = Cusum::new(CusumConfig::warmup("lat", 4, 0.0, 10.0));
        assert_eq!(d.baseline(), None);
        for (tick, v) in [90.0, 110.0, 95.0, 105.0].into_iter().enumerate() {
            assert_eq!(d.observe(tick as u64, v), None, "no alarms during warmup");
        }
        assert_eq!(d.baseline(), Some(100.0));
        // Now a shift accumulates against the learned mean.
        assert_eq!(d.observe(4, 106.0), None);
        let alert = d.observe(5, 106.0).expect("second +6 excursion crosses 10");
        assert_eq!(alert.statistic, 12.0);
        assert_eq!(alert.baseline, 100.0);
    }

    #[test]
    fn without_reset_a_persisting_shift_realarm_every_tick() {
        let mut config = CusumConfig::fixed("lat", 0.0, 0.0, 10.0);
        config.reset_on_alarm = false;
        let mut d = Cusum::new(config);
        assert!(d.observe(0, 11.0).is_some());
        assert!(d.observe(1, 0.0).is_some(), "statistic stays above threshold");
        assert_eq!(d.statistic(), 11.0);
    }

    #[test]
    fn slo_alarms_on_the_breach_transition_only() {
        let mut slo = SloTracker::new(SloConfig {
            name: "timeouts".to_string(),
            bad_series: "serve.deadline_cuts".to_string(),
            total_series: "serve.job_us.count".to_string(),
            target: 0.25,
        });
        assert_eq!(slo.observe(0, 0.0, 0.0), None, "no events, no burn");
        assert_eq!(slo.observe(1, 0.0, 3.0), None);
        assert_eq!(slo.burn(), 0.0);
        let alert = slo.observe(2, 2.0, 2.0).expect("2/5 crosses 0.25");
        assert_eq!(alert.kind, AlertKind::Slo);
        assert_eq!(alert.series, "timeouts");
        assert_eq!(alert.statistic, 0.4);
        assert_eq!(alert.baseline, 0.25);
        assert_eq!(slo.observe(3, 1.0, 1.0), None, "still breached: no re-alarm");
        assert!(slo.breached());
        // Recover below target, then breach again: re-arms.
        assert_eq!(slo.observe(4, 0.0, 10.0), None);
        assert!(!slo.breached());
        assert!(slo.observe(5, 6.0, 6.0).is_some());
        assert_eq!(
            slo.status_json(),
            "{\"name\":\"timeouts\",\"bad\":9,\"total\":22,\"burn\":0.4090909090909091,\
             \"target\":0.25,\"breached\":true}"
        );
    }
}
