//! Unified observability for the rapids stack: a metrics registry, a
//! hierarchical span tracer, and a leveled log sink — all stdlib-only.
//!
//! The crate is built around one hard constraint: **instrumentation must
//! never perturb results and must cost ~nothing when idle.**  Concretely:
//!
//! * [`metrics`] counters are relaxed atomics behind cheap cloneable
//!   handles; reading them is a snapshot, never a lock on the hot path.
//!   Metric values are *derived from* deterministic decisions (passes run,
//!   swaps applied, gates retimed) but are never *inputs to* any decision,
//!   fingerprint, or report projection — a contract pinned by
//!   `tests/integration_obs.rs`.
//! * [`trace`] spans compile to a no-op (`Option::None`, no allocation)
//!   unless a sink has been installed with [`trace::install`]; the guard
//!   checks a single relaxed [`AtomicBool`](std::sync::atomic::AtomicBool)
//!   and bails.  Installed, spans record wall-clock intervals per thread
//!   and export as Chrome trace-event JSON loadable in Perfetto.
//! * [`log`] routes diagnostics through one process-wide level filter so
//!   `--quiet` can silence a library's chatter without touching pinned
//!   stderr contract lines (which print verbatim at the default level).
//! * [`timeseries`] samples registry snapshots into fixed-capacity ring
//!   buffers (counter deltas, gauge levels, quantile tracks) under a
//!   **manual-tick** contract: the sampler has no clock of its own, so
//!   tests and CI drive time deterministically and production arms a
//!   wall-clock thread around it.
//! * [`detect`] runs one-sided CUSUM change detectors and SLO burn
//!   trackers over those series, emitting structured [`Alert`] records —
//!   pure functions of the tick sequence, never of the wall clock.
//! * [`json`] is the one full (nested) JSON reader in the workspace,
//!   shared by the obs binaries (`trace_check`, `rapids-top`).
//!
//! See `docs/observability.md` for the metric catalog, the span
//! hierarchy, the series/alert model, and the determinism contract.

pub mod detect;
pub mod json;
pub mod log;
pub mod metrics;
pub mod timeseries;
pub mod trace;

pub use detect::{Alert, AlertKind, Baseline, Cusum, CusumConfig, SloConfig, SloTracker};
pub use metrics::{global, Counter, Gauge, Histogram, Registry, Snapshot};
pub use timeseries::{Sampler, SamplerConfig, TickSample};
pub use trace::{span, span_owned, Span};
