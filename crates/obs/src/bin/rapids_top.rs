//! `rapids-top` — a live terminal dashboard over a running
//! `rapids-serve --listen` instance.
//!
//! Each frame asks the server for `stats`, a fixed set of telemetry
//! series (`{"cmd":"series"}`), and recent `alerts`, then renders
//! throughput, job-latency percentiles, cache hit rate, queue depth, and
//! the alert tail as a sparkline board.  Replies are parsed with the
//! shared [`rapids_obs::json`] reader; a server running without
//! `--telemetry-s` still renders the stats header (series rows show
//! `(telemetry off)`).
//!
//! ```text
//! rapids-top 127.0.0.1:7171 [--refresh-ms 1000] [--frames 0] [--last 60] [--plain]
//! ```
//!
//! `--frames N` exits after N frames (0 = run until the connection
//! drops; `--frames 1 --plain` is the scriptable one-shot used by CI).
//! `--plain` suppresses the ANSI clear-screen so output is pipeable.
//!
//! Rendering is a pure function of the fetched [`Frame`] — unit-tested
//! below without a server.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use rapids_obs::json::{parse, Value};

/// The series polled every frame, with their board labels.
const SERIES: &[(&str, &str)] = &[
    ("serve.job_us.count", "throughput (jobs/tick)"),
    ("serve.job_us.p50", "job p50 (us)"),
    ("serve.job_us.p99", "job p99 (us)"),
    ("serve.cache_hits", "cache hits/tick"),
    ("serve.queue_depth", "queue depth"),
];

/// One dashboard row: `(series name, label, points)` — `None` points
/// when the server has no telemetry plane (or the series has not
/// appeared yet).
type SeriesRow = (&'static str, &'static str, Option<Vec<(u64, f64)>>);

/// One fetched frame of dashboard state.
#[derive(Debug, Default)]
struct Frame {
    /// `(key, value)` pairs from the `stats` reply, in reply order.
    stats: Vec<(String, f64)>,
    /// Per-series points, one [`SeriesRow`] per `SERIES` entry.
    series: Vec<SeriesRow>,
    /// Rendered recent-alert descriptions, oldest first.
    alerts: Vec<String>,
    /// Rendered SLO status lines.
    slos: Vec<String>,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut addr = None;
    let mut refresh_ms = 1000u64;
    let mut frames = 0u64;
    let mut last = 60usize;
    let mut plain = false;
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--refresh-ms" => refresh_ms = parse_num(&value("--refresh-ms")),
            "--frames" => frames = parse_num(&value("--frames")),
            "--last" => last = parse_num(&value("--last")) as usize,
            "--plain" => plain = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: rapids-top ADDR [--refresh-ms N] [--frames N] [--last K] [--plain]"
                );
                return;
            }
            other if addr.is_none() && !other.starts_with('-') => addr = Some(arg),
            other => {
                eprintln!("error: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("error: missing server address (host:port)");
        std::process::exit(2);
    };

    let stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: connect {addr}: {e}");
        std::process::exit(1);
    });
    let mut client = Client::new(stream).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });

    let mut rendered = 0u64;
    loop {
        let frame = match client.fetch(last) {
            Ok(frame) => frame,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        let board = render(&addr, &frame, last);
        let mut out = std::io::stdout().lock();
        if !plain {
            // Clear screen + home, then the board.
            let _ = out.write_all(b"\x1b[2J\x1b[H");
        }
        let _ = out.write_all(board.as_bytes());
        let _ = out.flush();
        rendered += 1;
        if frames > 0 && rendered >= frames {
            return;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms.max(50)));
    }
}

fn parse_num(text: &str) -> u64 {
    text.parse().unwrap_or_else(|_| {
        eprintln!("error: `{text}` is not a number");
        std::process::exit(2);
    })
}

/// One line-oriented protocol connection.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn new(stream: TcpStream) -> Result<Client, String> {
        let reader = stream.try_clone().map_err(|e| format!("clone stream: {e}"))?;
        Ok(Client { writer: stream, reader: BufReader::new(reader) })
    }

    /// Sends one request line, returns the parsed reply.
    fn ask(&mut self, line: &str) -> Result<Value, String> {
        writeln!(self.writer, "{line}").map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("server closed the connection".to_string());
        }
        parse(reply.trim_end())
    }

    /// Fetches one dashboard frame.
    fn fetch(&mut self, last: usize) -> Result<Frame, String> {
        let mut frame = Frame::default();
        if let Value::Obj(pairs) = self.ask("{\"cmd\":\"stats\"}")? {
            for (key, value) in pairs {
                if let Some(v) = value.as_num() {
                    frame.stats.push((key, v));
                }
            }
        }
        for (name, label) in SERIES {
            let request = format!("{{\"cmd\":\"series\",\"name\":\"{name}\",\"last\":{last}}}");
            let reply = self.ask(&request)?;
            frame.series.push((name, label, series_points(&reply)));
        }
        let alerts = self.ask("{\"cmd\":\"alerts\"}")?;
        if let Some(Value::Arr(items)) = alerts.get("alerts") {
            for alert in items {
                frame.alerts.push(describe_alert(alert));
            }
        }
        if let Some(Value::Arr(items)) = alerts.get("slo") {
            for slo in items {
                frame.slos.push(describe_slo(slo));
            }
        }
        Ok(frame)
    }
}

/// Extracts `[[tick,value],…]` from a `series` reply; `None` for a
/// rejection (unknown series, telemetry off).
fn series_points(reply: &Value) -> Option<Vec<(u64, f64)>> {
    let Some(Value::Arr(raw)) = reply.get("points") else {
        return None;
    };
    let mut points = Vec::with_capacity(raw.len());
    for point in raw {
        if let Value::Arr(pair) = point {
            if let (Some(tick), Some(value)) =
                (pair.first().and_then(Value::as_num), pair.get(1).and_then(Value::as_num))
            {
                points.push((tick as u64, value));
            }
        }
    }
    Some(points)
}

/// `[tick 13] cusum serve.job_us.p99: statistic 60 over baseline 100`.
fn describe_alert(alert: &Value) -> String {
    let kind = alert.get("kind").and_then(Value::as_str).unwrap_or("?");
    let series = alert.get("series").and_then(Value::as_str).unwrap_or("?");
    let tick = alert.get("tick").and_then(Value::as_num).unwrap_or(-1.0);
    let statistic = alert.get("statistic").and_then(Value::as_num).unwrap_or(0.0);
    let baseline = alert.get("baseline").and_then(Value::as_num).unwrap_or(0.0);
    format!("[tick {tick}] {kind} {series}: statistic {statistic} over baseline {baseline}")
}

/// `timeouts: burn 0.40 of target 0.25 (BREACHED)`.
fn describe_slo(slo: &Value) -> String {
    let name = slo.get("name").and_then(Value::as_str).unwrap_or("?");
    let burn = slo.get("burn").and_then(Value::as_num).unwrap_or(0.0);
    let target = slo.get("target").and_then(Value::as_num).unwrap_or(0.0);
    let breached = matches!(slo.get("breached"), Some(Value::Bool(true)));
    let state = if breached { "BREACHED" } else { "ok" };
    format!("{name}: burn {burn:.2} of target {target:.2} ({state})")
}

/// Renders one frame as the full dashboard text (pure; unit-tested).
fn render(addr: &str, frame: &Frame, last: usize) -> String {
    use std::fmt::Write as _;
    let mut out = format!("rapids-top — {addr} (last {last} ticks)\n\n");

    if !frame.stats.is_empty() {
        let get =
            |key: &str| frame.stats.iter().find(|(k, _)| k == key).map(|(_, v)| *v).unwrap_or(0.0);
        let hits = get("cache_hits");
        let runs = get("optimizer_runs");
        let total = hits + runs;
        let rate = if total > 0.0 { 100.0 * hits / total } else { 0.0 };
        let _ = writeln!(
            out,
            "jobs timed {}   p50 {} us   p99 {} us   cache hit rate {rate:.1}%",
            get("jobs_timed"),
            get("job_p50_us"),
            get("job_p99_us"),
        );
        let _ = writeln!(
            out,
            "optimizer runs {}   verify runs {}   disk hits {}",
            runs,
            get("verify_runs"),
            get("disk_hits"),
        );
        out.push('\n');
    }

    let label_width = SERIES.iter().map(|(_, label)| label.len()).max().unwrap_or(0);
    for (_, label, points) in &frame.series {
        match points {
            None => {
                let _ = writeln!(out, "{label:label_width$}  (telemetry off)");
            }
            Some(points) if points.is_empty() => {
                let _ = writeln!(out, "{label:label_width$}  (no data)");
            }
            Some(points) => {
                let values: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
                let latest = *values.last().expect("non-empty");
                let _ = writeln!(out, "{label:label_width$}  {} {latest}", sparkline(&values));
            }
        }
    }

    out.push_str("\nalerts:\n");
    if frame.alerts.is_empty() {
        out.push_str("  (none)\n");
    } else {
        // Most recent last; show at most the final 8.
        for alert in frame.alerts.iter().rev().take(8).rev() {
            let _ = writeln!(out, "  {alert}");
        }
    }
    if !frame.slos.is_empty() {
        out.push_str("slo:\n");
        for slo in &frame.slos {
            let _ = writeln!(out, "  {slo}");
        }
    }
    out
}

/// The eight-level block-character sparkline of `values`, scaled to
/// their own min..max (a flat series renders at the lowest level).
fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    values
        .iter()
        .map(|&v| {
            let idx = if span > 0.0 { (((v - lo) / span) * 7.0).round() as usize } else { 0 };
            LEVELS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales_to_the_series_range() {
        assert_eq!(sparkline(&[0.0, 7.0]), "▁█");
        assert_eq!(sparkline(&[0.0, 3.5, 7.0]), "▁▅█");
        assert_eq!(sparkline(&[5.0, 5.0, 5.0]), "▁▁▁", "flat series sits at the floor");
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn render_shows_stats_series_and_alerts() {
        let frame = Frame {
            stats: vec![
                ("optimizer_runs".to_string(), 3.0),
                ("cache_hits".to_string(), 1.0),
                ("jobs_timed".to_string(), 4.0),
                ("job_p50_us".to_string(), 120.0),
                ("job_p99_us".to_string(), 900.0),
            ],
            series: vec![
                ("serve.job_us.count", "throughput (jobs/tick)", Some(vec![(0, 1.0), (1, 3.0)])),
                ("serve.queue_depth", "queue depth", Some(vec![])),
                ("serve.cache_hits", "cache hits/tick", None),
            ],
            alerts: vec!["[tick 3] cusum lat: statistic 60 over baseline 100".to_string()],
            slos: vec!["timeouts: burn 0.40 of target 0.25 (BREACHED)".to_string()],
        };
        let board = render("127.0.0.1:7171", &frame, 60);
        assert!(board.starts_with("rapids-top — 127.0.0.1:7171 (last 60 ticks)\n"));
        assert!(board.contains("cache hit rate 25.0%"), "{board}");
        assert!(board.contains("p50 120 us   p99 900 us"), "{board}");
        assert!(board.contains("throughput (jobs/tick)  ▁█ 3"), "{board}");
        assert!(board.contains("queue depth             (no data)"), "{board}");
        assert!(board.contains("cache hits/tick         (telemetry off)"), "{board}");
        assert!(board.contains("[tick 3] cusum lat"), "{board}");
        assert!(board.contains("timeouts: burn 0.40"), "{board}");
    }

    #[test]
    fn render_without_telemetry_or_alerts_is_calm() {
        let frame = Frame::default();
        let board = render("h:1", &frame, 10);
        assert!(board.contains("alerts:\n  (none)\n"), "{board}");
        assert!(!board.contains("slo:"), "{board}");
    }

    #[test]
    fn series_points_reads_a_reply_and_rejects_rejections() {
        let reply = parse("{\"ok\":\"series\",\"name\":\"x\",\"points\":[[0,1.5],[1,2]]}").unwrap();
        assert_eq!(series_points(&reply), Some(vec![(0, 1.5), (1, 2.0)]));
        let rejection =
            parse("{\"status\":\"rejected\",\"error\":\"telemetry is not armed\"}").unwrap();
        assert_eq!(series_points(&rejection), None);
    }

    #[test]
    fn alert_and_slo_descriptions_flatten_the_records() {
        let alert = parse(
            "{\"kind\":\"cusum\",\"series\":\"lat\",\"tick\":13,\
             \"statistic\":60,\"baseline\":100}",
        )
        .unwrap();
        assert_eq!(describe_alert(&alert), "[tick 13] cusum lat: statistic 60 over baseline 100");
        let slo = parse(
            "{\"name\":\"timeouts\",\"bad\":2,\"total\":5,\"burn\":0.4,\
             \"target\":0.25,\"breached\":true}",
        )
        .unwrap();
        assert_eq!(describe_slo(&slo), "timeouts: burn 0.40 of target 0.25 (BREACHED)");
    }
}
