//! Offline validator for exported Chrome trace-event files.
//!
//! ```text
//! trace_check FILE [required-span-name ...]
//! ```
//!
//! Checks, exiting nonzero with a message on the first failure:
//!
//! 1. `FILE` parses as JSON and is `{"traceEvents": [...]}`;
//! 2. every event is a complete (`"ph":"X"`) event with a string `name`
//!    and numeric `ts`/`dur`/`pid`/`tid`;
//! 3. per `tid`, events form a proper nesting — every pair of intervals
//!    is either disjoint or fully contained, never partially overlapping
//!    (the invariant that makes the trace render as a sane flame graph);
//! 4. every required span name given on the command line occurs at least
//!    once.
//!
//! The parser is the shared [`rapids_obs::json`] recursive-descent
//! reader: the CI gate must run offline with no Python/jq assumption,
//! and the workspace is serde-free by design.

use std::collections::BTreeMap;
use std::process::ExitCode;

use rapids_obs::json::{parse, Value};

struct Interval {
    name: String,
    ts: f64,
    end: f64,
}

/// Sub-nanosecond slack for float comparison; exported timestamps carry
/// exactly three decimals (nanosecond resolution), so this never flips a
/// real overlap into containment.
const EPS: f64 = 1e-6;

fn check(trace: &Value, required: &[String]) -> Result<(usize, usize), String> {
    let Some(Value::Arr(events)) = trace.get("traceEvents") else {
        return Err("top-level object has no `traceEvents` array".to_string());
    };
    let mut by_tid: BTreeMap<u64, Vec<Interval>> = BTreeMap::new();
    let mut names_seen: Vec<String> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        let field =
            |key: &str| event.get(key).ok_or_else(|| format!("event {i}: missing field `{key}`"));
        let name =
            field("name")?.as_str().ok_or_else(|| format!("event {i}: `name` is not a string"))?;
        let ph = field("ph")?.as_str().ok_or_else(|| format!("event {i}: `ph` is not a string"))?;
        if ph != "X" {
            return Err(format!("event {i} (`{name}`): ph is `{ph}`, expected complete `X`"));
        }
        let num = |key: &str| -> Result<f64, String> {
            field(key)?.as_num().ok_or_else(|| format!("event {i}: `{key}` is not a number"))
        };
        let ts = num("ts")?;
        let dur = num("dur")?;
        num("pid")?;
        let tid = num("tid")? as u64;
        if ts < 0.0 || dur < 0.0 {
            return Err(format!("event {i} (`{name}`): negative ts/dur"));
        }
        names_seen.push(name.to_string());
        by_tid.entry(tid).or_default().push(Interval { name: name.to_string(), ts, end: ts + dur });
    }

    // Nesting check per thread: sweep intervals by (start asc, longest
    // first) with a stack of open ancestors.  Each interval must close
    // inside the innermost still-open one or the nesting is broken.
    let tid_count = by_tid.len();
    for (tid, intervals) in by_tid.iter_mut() {
        intervals.sort_by(|a, b| {
            a.ts.partial_cmp(&b.ts)
                .unwrap()
                .then(b.end.partial_cmp(&a.end).unwrap())
                .then(a.name.cmp(&b.name))
        });
        let mut stack: Vec<&Interval> = Vec::new();
        for iv in intervals.iter() {
            while let Some(top) = stack.last() {
                if top.end <= iv.ts + EPS {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(top) = stack.last() {
                if iv.end > top.end + EPS {
                    return Err(format!(
                        "tid {tid}: span `{}` [{:.3}, {:.3}] partially overlaps \
                         enclosing `{}` [{:.3}, {:.3}] — not a proper nesting",
                        iv.name, iv.ts, iv.end, top.name, top.ts, top.end
                    ));
                }
            }
            stack.push(iv);
        }
    }

    for want in required {
        if !names_seen.iter().any(|n| n == want) {
            return Err(format!("required span name `{want}` never appears in the trace"));
        }
    }
    Ok((names_seen.len(), tid_count))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check FILE [required-span-name ...]");
        return ExitCode::FAILURE;
    };
    let required: Vec<String> = args.collect();
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match parse(&text).and_then(|v| check(&v, &required)) {
        Ok((events, tids)) => {
            println!("trace_check: {path}: {events} event(s) across {tids} thread(s), nesting OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("trace_check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, tid: u64, ts: f64, dur: f64) -> String {
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"t\",\"ph\":\"X\",\"ts\":{ts},\"dur\":{dur},\
             \"pid\":1,\"tid\":{tid}}}"
        )
    }

    fn trace(events: &[String]) -> Value {
        parse(&format!("{{\"traceEvents\":[{}]}}", events.join(","))).unwrap()
    }

    #[test]
    fn accepts_proper_nesting_and_finds_required_names() {
        let t = trace(&[
            ev("job", 1, 0.0, 100.0),
            ev("stage", 1, 10.0, 50.0),
            ev("pass", 1, 12.0, 8.0),
            ev("pass", 1, 30.0, 8.0),
            ev("job", 2, 5.0, 40.0),
        ]);
        let (events, tids) = check(&t, &["job".to_string(), "pass".to_string()]).unwrap();
        assert_eq!((events, tids), (5, 2));
    }

    #[test]
    fn rejects_partial_overlap() {
        let t = trace(&[ev("a", 1, 0.0, 10.0), ev("b", 1, 5.0, 10.0)]);
        let err = check(&t, &[]).unwrap_err();
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn rejects_missing_required_name() {
        let t = trace(&[ev("a", 1, 0.0, 10.0)]);
        let err = check(&t, &["stage.sta".to_string()]).unwrap_err();
        assert!(err.contains("stage.sta"), "{err}");
    }

    #[test]
    fn rejects_malformed_events_and_garbage() {
        assert!(parse("{\"traceEvents\":[{}]").is_err(), "truncated");
        assert!(parse("{} junk").is_err(), "trailing garbage");
        let t = parse(
            "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"B\",\"ts\":0,\"dur\":0,\
                        \"pid\":1,\"tid\":1}]}",
        )
        .unwrap();
        assert!(check(&t, &[]).unwrap_err().contains("expected complete"));
        let t = parse("{\"nope\":[]}").unwrap();
        assert!(check(&t, &[]).unwrap_err().contains("traceEvents"));
    }
}
