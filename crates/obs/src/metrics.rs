//! Named atomic counters, gauges, and log₂-bucketed histograms behind a
//! registry with deterministic (sorted) snapshots.
//!
//! A [`Registry`] maps dotted names (`"timing.gates_retimed"`) to shared
//! instruments.  Lookup takes a short mutex on a `BTreeMap` and is meant
//! for construction time or per-event sites (once per pass / sweep /
//! job); the returned handles are `Arc`-backed and lock-free to update,
//! so hot loops hold a handle and touch only a relaxed atomic.
//!
//! The process-global registry ([`global`]) aggregates every layer's
//! counters into one [`Snapshot`]; components that need isolated tallies
//! (one serve `Engine` per test, say) build their own `Registry` and
//! merge snapshots at export time.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing `u64` counter handle.
///
/// Cloning shares the underlying atomic; updates are relaxed (counters
/// order nothing, they only tally).
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not (yet) attached to any registry; useful as a field
    /// default.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge handle (a level, not a tally): last-write-wins `set`,
/// plus relative `add`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Moves the level by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: one underflow bucket for zero plus one per power of two
/// up to `u64::MAX`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    /// `buckets[0]` holds zeros; `buckets[i]` (i ≥ 1) holds values in
    /// `[2^(i-1), 2^i)`.
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramInner {
    fn new() -> Self {
        HistogramInner {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram handle with percentile readout.
///
/// Values land in power-of-two buckets; a reported quantile linearly
/// interpolates within the bucket containing that rank (assuming the
/// bucket's observations spread evenly across its span), so it is never
/// above the bucket upper bound and tightens toward the true value as
/// buckets fill — the right fidelity for latency triage ("did p99
/// double?") at the cost of three relaxed atomics per record.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner::new()))
    }
}

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The largest value that lands in `buckets[idx]`.
fn bucket_upper_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else if idx >= 64 {
        u64::MAX
    } else {
        (1u64 << idx) - 1
    }
}

/// The smallest value that lands in `buckets[idx]`.
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        1u64 << (idx - 1)
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// The interpolated value at quantile `q` in `[0, 1]`; 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// A point-in-time copy of the bucket array (consistent enough for
    /// reporting: buckets are read after count, both relaxed).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.0.count.load(Ordering::Relaxed);
        let sum = self.0.sum.load(Ordering::Relaxed);
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot { count, sum, buckets }
    }
}

/// A frozen histogram: counts per log₂ bucket plus totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Observation sum.
    pub sum: u64,
    buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`, linearly interpolated within
    /// the log₂ bucket holding that rank (the bucket's observations are
    /// assumed evenly spread over its span, so rank `k` of `n` in-bucket
    /// observations maps to `lo + (k/n)·(hi − lo)`); 0 when empty.  The
    /// result never exceeds the bucket upper bound, and a full-rank hit
    /// (`k = n`) degrades to exactly that bound.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n > 0 && seen + n >= rank {
                let lo = bucket_lower_bound(idx) as f64;
                let hi = bucket_upper_bound(idx) as f64;
                let frac = (rank - seen) as f64 / n as f64;
                return lo + frac * (hi - lo);
            }
            seen += n;
        }
        bucket_upper_bound(BUCKETS - 1) as f64
    }

    /// Median (within-bucket interpolated).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th percentile (within-bucket interpolated).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th percentile (within-bucket interpolated).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named-instrument registry.  `Clone` shares the same instruments.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        map.insert(name.to_string(), c.clone());
        c
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap();
        if let Some(g) = map.get(name) {
            return g.clone();
        }
        let g = Gauge::default();
        map.insert(name.to_string(), g.clone());
        g
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.inner.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Histogram::default();
        map.insert(name.to_string(), h.clone());
        h
    }

    /// A frozen, name-sorted copy of every instrument's current value.
    pub fn snapshot(&self) -> Snapshot {
        let counters =
            self.inner.counters.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let gauges =
            self.inner.gauges.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.get())).collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot { counters, gauges, histograms }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry every library layer tallies into.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand: the global counter under `name` (lookup cost — hold the
/// handle instead inside hot loops).
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// A frozen registry state: sorted maps of instrument values, exportable
/// as JSON.
///
/// Counters and gauges of deterministic decision tallies are stable
/// across worker counts and reruns; histograms carry wall-clock data and
/// are *not* — exporters keep them in a separate JSON section so CI can
/// pin the deterministic part alone.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Folds `other` into `self`: counters/gauges/histogram buckets add.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.histograms {
            self.histograms
                .entry(k.clone())
                .and_modify(|h| h.merge(v))
                .or_insert_with(|| v.clone());
        }
    }

    fn write_histogram(out: &mut String, h: &HistogramSnapshot) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            h.count,
            h.sum,
            h.p50(),
            h.p90(),
            h.p99()
        );
    }

    /// Single-line JSON (`{"counters":{...},"gauges":{...},"histograms":{...}}`)
    /// for the serve line protocol.
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape(k));
            Snapshot::write_histogram(&mut out, v);
        }
        out.push_str("}}");
        out
    }

    /// Pretty JSON, 2-space indent, one instrument per line, sections in
    /// the fixed order counters → gauges → histograms.  The `counters`
    /// section is a pure function of the workload (no wall-clock data),
    /// which is what `ci.sh` extracts and diffs against
    /// `ci/expected_metrics_smoke.json`.
    pub fn to_json_pretty(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape(k), v);
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(out, "{sep}\n    \"{}\": {}", escape(k), v);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            let sep = if i > 0 { "," } else { "" };
            let _ = write!(out, "{sep}\n    \"{}\": ", escape(k));
            Snapshot::write_histogram(&mut out, v);
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Prometheus text exposition (version 0.0.4) of the snapshot, for
    /// external scrapers via the serve `{"cmd":"prom"}` verb.  Dotted
    /// metric names are mangled to `rapids_<name_with_underscores>`;
    /// histograms render as summaries (interpolated quantiles + `_sum` +
    /// `_count`).  Lines come out name-sorted per section, so the text is
    /// deterministic for a deterministic snapshot.
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in &self.counters {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, v) in &self.gauges {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        }
        for (k, h) in &self.histograms {
            let name = prom_name(k);
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [("0.5", h.p50()), ("0.9", h.p90()), ("0.99", h.p99())] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

/// Mangles a dotted metric name into a Prometheus-legal one:
/// `serve.job_us` → `rapids_serve_job_us` (every character outside
/// `[A-Za-z0-9_]` becomes `_`).
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("rapids_");
    for c in name.chars() {
        out.push(if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' });
    }
    out
}

/// Escapes a metric name for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_through_clones() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("x").get(), 5);
        assert_eq!(r.counter("y").get(), 0, "fresh name starts at zero");
    }

    #[test]
    fn gauges_set_and_move() {
        let r = Registry::new();
        let g = r.gauge("level");
        g.set(10);
        g.add(-3);
        assert_eq!(r.gauge("level").get(), 7);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_percentiles_interpolate_within_the_bucket() {
        let h = Histogram::detached();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        // Rank 50 (true value 50) lands in bucket [32,63] as in-bucket rank
        // 19 of 32: 32 + 19/32·31 = 50.40625 — versus 63 pre-interpolation.
        assert_eq!(h.quantile(0.50), 32.0 + 19.0 / 32.0 * 31.0);
        // Ranks 90 and 99 land in bucket [64,127], which holds ranks 64..=100
        // (37 observations): 64 + k/37·63 for k = 27 and 36.
        assert_eq!(h.quantile(0.90), 64.0 + 27.0 / 37.0 * 63.0);
        assert_eq!(h.quantile(0.99), 64.0 + 36.0 / 37.0 * 63.0);
        // Interpolated quantiles bound the true rank value from above far
        // tighter than the old bucket upper bound (127 for both here).
        assert!(h.quantile(0.90) >= 90.0 && h.quantile(0.90) < 111.0);
        assert_eq!(Histogram::detached().quantile(0.99), 0.0, "empty histogram");
    }

    #[test]
    fn full_rank_interpolation_degrades_to_the_bucket_upper_bound() {
        // A single observation is in-bucket rank 1 of 1 (frac = 1), so the
        // quantile is exactly the bucket upper bound — the pre-interpolation
        // behavior, and why single-shot pins like `json_exports_are_well_formed`
        // are unchanged.
        let h = Histogram::detached();
        h.record(1000);
        assert_eq!(h.quantile(0.50), 1023.0);
        // Zeros stay exactly zero (degenerate bucket, lo == hi == 0).
        let z = Histogram::detached();
        z.record(0);
        assert_eq!(z.quantile(0.99), 0.0);
    }

    #[test]
    fn snapshot_is_sorted_and_merges_additively() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").inc();
        r.histogram("lat").record(5);
        let mut snap = r.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        assert_eq!(names, ["a.one", "b.two"], "BTreeMap keys come out sorted");

        let other = Registry::new();
        other.counter("b.two").add(3);
        other.counter("c.three").inc();
        other.histogram("lat").record(7);
        snap.merge(&other.snapshot());
        assert_eq!(snap.counters["b.two"], 5);
        assert_eq!(snap.counters["c.three"], 1);
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].sum, 12);
    }

    #[test]
    fn json_exports_are_well_formed() {
        let r = Registry::new();
        r.counter("serve.jobs").add(3);
        r.gauge("serve.depth").set(-1);
        r.histogram("serve.job_us").record(1000);
        let line = r.snapshot().to_json_line();
        assert_eq!(
            line,
            "{\"counters\":{\"serve.jobs\":3},\"gauges\":{\"serve.depth\":-1},\
             \"histograms\":{\"serve.job_us\":\
             {\"count\":1,\"sum\":1000,\"p50\":1023,\"p90\":1023,\"p99\":1023}}}"
        );
        let pretty = r.snapshot().to_json_pretty();
        assert!(pretty.contains("  \"counters\": {\n    \"serve.jobs\": 3\n  },"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn empty_snapshot_pretty_json_has_all_sections() {
        let pretty = Registry::new().snapshot().to_json_pretty();
        assert_eq!(pretty, "{\n  \"counters\": {},\n  \"gauges\": {},\n  \"histograms\": {}\n}\n");
    }

    #[test]
    fn prometheus_exposition_renders_all_sections() {
        let r = Registry::new();
        r.counter("serve.jobs").add(3);
        r.gauge("serve.queue_depth").set(-1);
        r.histogram("serve.job_us").record(1000);
        let text = r.snapshot().to_prometheus_text();
        assert_eq!(
            text,
            "# TYPE rapids_serve_jobs counter\n\
             rapids_serve_jobs 3\n\
             # TYPE rapids_serve_queue_depth gauge\n\
             rapids_serve_queue_depth -1\n\
             # TYPE rapids_serve_job_us summary\n\
             rapids_serve_job_us{quantile=\"0.5\"} 1023\n\
             rapids_serve_job_us{quantile=\"0.9\"} 1023\n\
             rapids_serve_job_us{quantile=\"0.99\"} 1023\n\
             rapids_serve_job_us_sum 1000\n\
             rapids_serve_job_us_count 1\n"
        );
        assert_eq!(prom_name("a.b-c.d_e"), "rapids_a_b_c_d_e");
    }

    #[test]
    fn global_registry_is_one_instance() {
        let a = global().counter("obs.test.global_registry_is_one_instance");
        global().counter("obs.test.global_registry_is_one_instance").add(2);
        assert_eq!(a.get(), 2);
    }
}
