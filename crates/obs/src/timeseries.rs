//! Fixed-capacity time series sampled from metric [`Snapshot`]s.
//!
//! A [`Sampler`] turns a sequence of registry snapshots into named series
//! held in ring buffers: each [`Sampler::tick`] derives, per instrument,
//!
//! * **counter deltas** — the per-interval increment of every counter
//!   (and of every histogram's observation count, as `<name>.count`), so
//!   a rate is just `delta / resolution`;
//! * **gauge levels** — the raw value (a gauge is already a level);
//! * **quantile tracks** — `<name>.p50` / `<name>.p99` of every
//!   histogram's *cumulative* distribution at that instant.
//!
//! The sampler is deliberately passive: it has no thread and no clock.
//! Callers drive time by calling `tick` — in production a wall-clock
//! thread (see `serve::telemetry`), in tests and CI smokes a **manual
//! tick** at chosen quiescent points, which is what makes every series
//! byte-reproducible: the same snapshot sequence yields the same points,
//! whatever the wall clock did.  Resolution is therefore the caller's
//! tick period, and retention is `resolution × capacity`.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

use crate::metrics::Snapshot;

/// Sampler knobs.
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Points retained per series; older points fall off the ring.
    pub capacity: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        // At the default 1 s production resolution: ~8.5 minutes of
        // history, a few KiB per series.
        SamplerConfig { capacity: 512 }
    }
}

/// One series' ring of `(tick, value)` points.
#[derive(Clone, Debug, Default)]
pub struct Series {
    points: VecDeque<(u64, f64)>,
}

impl Series {
    /// The most recent `last` points, oldest first (all of them when
    /// `last` is 0 or exceeds the retained count).
    pub fn window(&self, last: usize) -> Vec<(u64, f64)> {
        let n = self.points.len();
        let take = if last == 0 { n } else { last.min(n) };
        self.points.iter().skip(n - take).copied().collect()
    }
}

/// The derived values of one tick, section by section.
///
/// `counters` (deltas) and `gauges` (levels) are pure functions of the
/// workload when the underlying instruments are — byte-reproducible
/// across reruns and worker counts under the manual-tick contract.
/// `quantiles` carry wall-clock-derived data (latency percentiles) and
/// are *not*; exporters keep them in a separate section so pins can
/// strip them.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TickSample {
    /// The tick index this sample was taken at (0-based, monotonic).
    pub tick: u64,
    /// Per-interval counter deltas (includes `<hist>.count` deltas).
    pub counters: Vec<(String, f64)>,
    /// Raw gauge levels.
    pub gauges: Vec<(String, f64)>,
    /// Histogram quantile tracks (`<hist>.p50`, `<hist>.p99`).
    pub quantiles: Vec<(String, f64)>,
}

impl TickSample {
    /// All `(name, value)` pairs of this tick, in section order — the
    /// stream change detectors consume.
    pub fn points(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters
            .iter()
            .chain(self.gauges.iter())
            .chain(self.quantiles.iter())
            .map(|(k, v)| (k.as_str(), *v))
    }
}

struct State {
    ticks: u64,
    last: Snapshot,
    series: BTreeMap<String, Series>,
}

/// Snapshots a [`Registry`](crate::Registry)'s state into named ring
/// buffers, one [`tick`](Sampler::tick) at a time.
pub struct Sampler {
    capacity: usize,
    state: Mutex<State>,
}

impl Sampler {
    /// An empty sampler; the first tick establishes the delta baseline.
    pub fn new(config: SamplerConfig) -> Self {
        Sampler {
            capacity: config.capacity.max(1),
            state: Mutex::new(State {
                ticks: 0,
                last: Snapshot::default(),
                series: BTreeMap::new(),
            }),
        }
    }

    /// Ingests one snapshot: derives deltas/levels/quantiles against the
    /// previous tick, appends every point to its ring, and returns the
    /// tick's values (for detectors and journals).
    pub fn tick(&self, snapshot: &Snapshot) -> TickSample {
        let mut state = self.state.lock().unwrap();
        let tick = state.ticks;
        state.ticks += 1;

        let mut sample = TickSample { tick, ..TickSample::default() };
        for (k, &v) in &snapshot.counters {
            let prev = state.last.counters.get(k).copied().unwrap_or(0);
            sample.counters.push((k.clone(), v.saturating_sub(prev) as f64));
        }
        for (k, &v) in &snapshot.gauges {
            sample.gauges.push((k.clone(), v as f64));
        }
        for (k, h) in &snapshot.histograms {
            let prev = state.last.histograms.get(k).map(|p| p.count).unwrap_or(0);
            sample.counters.push((format!("{k}.count"), h.count.saturating_sub(prev) as f64));
            sample.quantiles.push((format!("{k}.p50"), h.p50()));
            sample.quantiles.push((format!("{k}.p99"), h.p99()));
        }
        // Keep the counters section name-sorted even with the appended
        // `<hist>.count` names, so exports are deterministic.
        sample.counters.sort_by(|a, b| a.0.cmp(&b.0));

        for (name, value) in sample.points() {
            let series = state.series.entry(name.to_string()).or_default();
            if series.points.len() == self.capacity {
                series.points.pop_front();
            }
            series.points.push_back((tick, value));
        }
        state.last = snapshot.clone();
        sample
    }

    /// Establishes the delta baseline without taking a tick: no points
    /// are recorded, but the next [`tick`](Sampler::tick) reports
    /// per-interval increments rather than lifetime absolutes.  Call once
    /// at arm time when the registry has already been accumulating.
    pub fn prime(&self, snapshot: &Snapshot) {
        self.state.lock().unwrap().last = snapshot.clone();
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.state.lock().unwrap().ticks
    }

    /// Every series name currently tracked, sorted.
    pub fn names(&self) -> Vec<String> {
        self.state.lock().unwrap().series.keys().cloned().collect()
    }

    /// The most recent `last` points of `name` (0 = all retained);
    /// `None` for an unknown series.
    pub fn window(&self, name: &str, last: usize) -> Option<Vec<(u64, f64)>> {
        self.state.lock().unwrap().series.get(name).map(|s| s.window(last))
    }

    /// The `window` rendered as a protocol reply line:
    /// `{"ok":"series","name":…,"points":[[tick,value],…]}`.
    pub fn window_json(&self, name: &str, last: usize) -> Option<String> {
        use std::fmt::Write as _;
        let points = self.window(name, last)?;
        let mut out = format!("{{\"ok\":\"series\",\"name\":\"{}\",\"points\":[", escape(name));
        for (i, (tick, value)) in points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{tick},{}]", number(*value));
        }
        out.push_str("]}");
        Some(out)
    }
}

/// Renders an `f64` as a JSON number: shortest round-trip form, `null`
/// for non-finite values (which deterministic series never produce).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a series name for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn counter_deltas_gauge_levels_and_quantile_tracks() {
        let r = Registry::new();
        let sampler = Sampler::new(SamplerConfig::default());
        r.counter("jobs").add(3);
        r.gauge("depth").set(7);
        r.histogram("lat").record(1000);

        let s0 = sampler.tick(&r.snapshot());
        assert_eq!(s0.tick, 0);
        assert_eq!(s0.counters, vec![("jobs".into(), 3.0), ("lat.count".into(), 1.0)]);
        assert_eq!(s0.gauges, vec![("depth".into(), 7.0)]);
        assert_eq!(s0.quantiles, vec![("lat.p50".into(), 1023.0), ("lat.p99".into(), 1023.0)]);

        r.counter("jobs").add(2);
        r.gauge("depth").set(-1);
        let s1 = sampler.tick(&r.snapshot());
        assert_eq!(s1.tick, 1);
        assert_eq!(s1.counters, vec![("jobs".into(), 2.0), ("lat.count".into(), 0.0)]);
        assert_eq!(s1.gauges, vec![("depth".into(), -1.0)]);

        assert_eq!(sampler.window("jobs", 0).unwrap(), vec![(0, 3.0), (1, 2.0)]);
        assert_eq!(sampler.window("jobs", 1).unwrap(), vec![(1, 2.0)]);
        assert_eq!(sampler.window("nope", 1), None);
        assert_eq!(
            sampler.names(),
            ["depth", "jobs", "lat.count", "lat.p50", "lat.p99"].map(String::from).to_vec()
        );
    }

    #[test]
    fn priming_turns_the_first_tick_into_a_delta() {
        let r = Registry::new();
        r.counter("jobs").add(1000); // pre-arm history
        let sampler = Sampler::new(SamplerConfig::default());
        sampler.prime(&r.snapshot());
        assert_eq!(sampler.ticks(), 0, "priming is not a tick");
        r.counter("jobs").add(2);
        let s0 = sampler.tick(&r.snapshot());
        assert_eq!(s0.counters, vec![("jobs".into(), 2.0)], "delta, not the lifetime absolute");
        assert_eq!(sampler.window("jobs", 0).unwrap(), vec![(0, 2.0)]);
    }

    #[test]
    fn ring_evicts_oldest_points_at_capacity() {
        let r = Registry::new();
        let sampler = Sampler::new(SamplerConfig { capacity: 3 });
        for i in 0..5u64 {
            r.counter("c").add(i + 1);
            sampler.tick(&r.snapshot());
        }
        assert_eq!(sampler.ticks(), 5);
        assert_eq!(sampler.window("c", 0).unwrap(), vec![(2, 3.0), (3, 4.0), (4, 5.0)]);
    }

    #[test]
    fn window_json_is_a_protocol_line() {
        let r = Registry::new();
        let sampler = Sampler::new(SamplerConfig::default());
        r.counter("jobs").add(2);
        sampler.tick(&r.snapshot());
        sampler.tick(&r.snapshot());
        assert_eq!(
            sampler.window_json("jobs", 0).unwrap(),
            "{\"ok\":\"series\",\"name\":\"jobs\",\"points\":[[0,2],[1,0]]}"
        );
        assert_eq!(sampler.window_json("nope", 0), None);
    }

    #[test]
    fn same_snapshot_sequence_yields_identical_series() {
        let run = || {
            let r = Registry::new();
            let sampler = Sampler::new(SamplerConfig::default());
            let mut lines = Vec::new();
            for i in 0..4u64 {
                r.counter("a").add(i);
                r.gauge("g").set(i as i64 * 3 - 1);
                r.histogram("h").record(i * 100);
                sampler.tick(&r.snapshot());
            }
            for name in sampler.names() {
                lines.push(sampler.window_json(&name, 0).unwrap());
            }
            lines
        };
        assert_eq!(run(), run(), "manual ticks are byte-reproducible");
    }
}
