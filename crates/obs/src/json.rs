//! A small recursive-descent JSON reader for observability tooling.
//!
//! The workspace is serde-free by design, but the obs binaries
//! (`trace_check`, `rapids-top`) must *consume* JSON produced elsewhere —
//! Chrome trace files, protocol replies with nested arrays — which the
//! flat-object parser in `rapids-serve` deliberately rejects.  This is
//! the one full JSON reader in the workspace: a tree [`Value`] plus
//! [`parse`], ~150 lines, stdlib only.
//!
//! It is a *reader*, not a validator for hostile input: numbers go
//! through `f64` (fine for tick indices and metric values), and object
//! keys keep their textual order (lookups via [`Value::get`] are linear).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (through `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in textual key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks `key` up in an object (linear scan); `None` otherwise.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_escapes_numbers_and_nesting() {
        let v = parse("{\"a\":\"q\\\"\\u0041\\n\",\"b\":[-1.5e2,true,null],\"c\":{\"d\":[[0,7]]}}")
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_str().unwrap(), "q\"A\n");
        let items = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(items[0].as_num().unwrap(), -150.0);
        assert_eq!(items[1], Value::Bool(true));
        assert_eq!(items[2], Value::Null);
        let point = v.get("c").unwrap().get("d").unwrap().as_arr().unwrap()[0].as_arr().unwrap();
        assert_eq!(point[1].as_num().unwrap(), 7.0);
    }

    #[test]
    fn rejects_truncation_and_trailing_garbage() {
        assert!(parse("{\"a\":[1,2").is_err());
        assert!(parse("{} junk").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }
}
