//! The gate sizing optimizer ("GS" in the paper's Table 1).
//!
//! Timing state is owned by an [`IncrementalSta`]: each phase scores
//! candidates against the frozen report of the last refresh, and the refresh
//! between phases re-times only the fan-in/fan-out cones of the gates that
//! actually changed.  Candidate probes run through a [`NetCache`] so the
//! star geometry and Elmore delays of unchanged nets are never recomputed,
//! and phases can score batches of region-disjoint gates on worker threads
//! (`SizerConfig::threads`) with bit-identical results to the sequential
//! visit.

use std::collections::HashSet;

use rapids_celllib::{DriveStrength, Library};
use rapids_netlist::{GateId, Network};
use rapids_placement::Placement;
use rapids_timing::{IncrementalSta, NetCache, TimingConfig, TimingReport};

use crate::cancel::CancelToken;
use crate::neighborhood::neighborhood_eval;
use crate::parallel::visit_in_disjoint_batches;

/// Configuration of the sizing optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct SizerConfig {
    /// Maximum number of (min-slack + relaxation) passes.
    pub max_passes: usize,
    /// Gates whose slack is within this margin of the worst slack are
    /// considered critical and visited by the min-slack phase, ns.
    pub critical_margin_ns: f64,
    /// Minimum improvement of the critical-path delay required to start
    /// another pass, ns.
    pub convergence_threshold_ns: f64,
    /// Whether the relaxation phase may downsize non-critical gates to
    /// recover area.
    pub recover_area: bool,
    /// Worker threads for candidate scoring (1 = fully sequential).  Any
    /// thread count takes identical decisions and sizing is bit-exact; the
    /// normative statement lives in [`crate::parallel`] (the `threads`
    /// determinism contract).
    pub threads: usize,
}

impl Default for SizerConfig {
    fn default() -> Self {
        SizerConfig {
            max_passes: 6,
            critical_margin_ns: 0.15,
            convergence_threshold_ns: 1e-4,
            recover_area: true,
            threads: 1,
        }
    }
}

impl SizerConfig {
    /// A reduced-effort configuration for tests and smoke benchmarks.
    pub fn fast() -> Self {
        SizerConfig { max_passes: 2, ..Self::default() }
    }
}

/// Summary of one sizing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingOutcome {
    /// Critical-path delay before optimization, ns.
    pub initial_delay_ns: f64,
    /// Critical-path delay after optimization, ns.
    pub final_delay_ns: f64,
    /// Total cell area before optimization, µm².
    pub initial_area_um2: f64,
    /// Total cell area after optimization, µm².
    pub final_area_um2: f64,
    /// Number of gates whose implementation changed.
    pub resized_gates: usize,
    /// Number of optimization passes executed.
    pub passes: usize,
}

impl SizingOutcome {
    /// Delay improvement as a percentage of the initial delay.
    pub fn delay_improvement_percent(&self) -> f64 {
        if self.initial_delay_ns <= 0.0 {
            return 0.0;
        }
        100.0 * (self.initial_delay_ns - self.final_delay_ns) / self.initial_delay_ns
    }

    /// Area change as a percentage of the initial area (negative = smaller).
    pub fn area_change_percent(&self) -> f64 {
        if self.initial_area_um2 <= 0.0 {
            return 0.0;
        }
        100.0 * (self.final_area_um2 - self.initial_area_um2) / self.initial_area_um2
    }
}

/// A sizing decision journal: `(gate, previous size class)` per change, in
/// application order.  Replaces the whole-network snapshots that phase
/// rollback used to clone.
type SizeJournal = Vec<(GateId, u8)>;

/// The gate sizing optimizer.
#[derive(Debug, Clone)]
pub struct GateSizer {
    config: SizerConfig,
    cancel: CancelToken,
}

impl GateSizer {
    /// Creates a sizer with the given configuration.
    pub fn new(config: SizerConfig) -> Self {
        GateSizer { config, cancel: CancelToken::new() }
    }

    /// Attaches a cooperative cancellation token: the pass loop polls it at
    /// pass boundaries and stops early (returning the best result so far)
    /// once it is cancelled.  The token lives on the sizer, not the config,
    /// so it never participates in config equality or fingerprints.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Runs sizing on `network` in place (only `size_class` fields change;
    /// the structure and the placement are untouched) and reports the
    /// before/after metrics.
    pub fn optimize(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
    ) -> SizingOutcome {
        // The shared batch visitor threads a mutable placement through so
        // that inverting-swap probes (in the rewiring optimizer) can host
        // inserted inverters; sizing never touches it, so a private copy
        // keeps the caller's placement provably frozen.
        let mut placement = placement.clone();
        let mut inc = IncrementalSta::new_with_threads(
            network,
            library,
            &placement,
            timing,
            self.config.threads,
        );
        self.optimize_with(network, library, &mut placement, timing, &mut inc)
    }

    /// Runs sizing against a caller-owned timing engine, leaving `inc`
    /// current for the final network state.
    ///
    /// This is the path the rewiring optimizer uses: it already owns an
    /// [`IncrementalSta`] for the network, so sizing re-uses it instead of
    /// building a second engine and forcing a redundant full re-analysis
    /// afterwards.  `inc` must be current for (`network`, `placement`) on
    /// entry.  Because a dirty-cone update converges bit-identically to a
    /// full analysis, the decisions — and the resulting QoR — are exactly
    /// those of [`GateSizer::optimize`].
    pub fn optimize_with(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &mut Placement,
        timing: &TimingConfig,
        inc: &mut IncrementalSta,
    ) -> SizingOutcome {
        let pass_counter = rapids_obs::metrics::counter("sizer.passes");
        let mut cache = NetCache::for_network(network);
        let initial_delay_ns = inc.report().critical_delay_ns();
        let initial_area_um2 = library.network_area_um2(network);
        let mut resized: HashSet<GateId> = HashSet::new();

        let mut best_delay = initial_delay_ns;
        let mut passes = 0;
        for _ in 0..self.config.max_passes {
            if self.cancel.is_cancelled() {
                break;
            }
            passes += 1;
            pass_counter.inc();
            let _pass_span = rapids_obs::span("sizer.pass");
            // The min-slack phase and the relaxation phase are checkpointed
            // independently: a relaxation step that turns out to hurt the
            // global critical path is rolled back without discarding the
            // delay gains of the min-slack phase.
            let journal_min = self.min_slack_phase(
                network,
                library,
                placement,
                timing,
                inc.report(),
                &mut cache,
                &mut resized,
            );
            let changed_min = journal_min.len();
            let touched_min: Vec<GateId> = journal_min.iter().map(|&(g, _)| g).collect();
            inc.update(network, library, placement, &touched_min);
            let after_min = inc.report().critical_delay_ns();
            if after_min > best_delay + 1e-9 {
                rollback(network, &mut cache, &journal_min);
                inc.update(network, library, placement, &touched_min);
                break;
            }
            let mut changed_relax = 0;
            if self.config.recover_area {
                let journal_relax = self.relaxation_phase(
                    network,
                    library,
                    placement,
                    timing,
                    inc.report(),
                    &mut cache,
                    &mut resized,
                );
                changed_relax = journal_relax.len();
                let touched: Vec<GateId> = journal_relax.iter().map(|&(g, _)| g).collect();
                inc.update(network, library, placement, &touched);
                let after_relax = inc.report().critical_delay_ns();
                if after_relax > after_min + 1e-9 {
                    rollback(network, &mut cache, &journal_relax);
                    inc.update(network, library, placement, &touched);
                    changed_relax = 0;
                }
            }
            let after = inc.report().critical_delay_ns();
            let improved = best_delay - after > self.config.convergence_threshold_ns;
            if after < best_delay {
                best_delay = after;
            }
            if changed_min + changed_relax == 0 || !improved {
                break;
            }
        }

        rapids_obs::metrics::counter("sizer.gates_resized").add(resized.len() as u64);
        let final_report = inc.report();
        SizingOutcome {
            initial_delay_ns,
            final_delay_ns: final_report.critical_delay_ns(),
            initial_area_um2,
            final_area_um2: library.network_area_um2(network),
            resized_gates: resized.len(),
            passes,
        }
    }

    /// Visits critical gates in order of increasing slack and greedily picks
    /// the drive strength that maximizes the gate's own re-timed slack,
    /// subject to the fan-in drivers staying above the do-no-harm floor
    /// (see `decide_best_drive`).
    #[allow(clippy::too_many_arguments)]
    fn min_slack_phase(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &mut Placement,
        timing: &TimingConfig,
        report: &TimingReport,
        cache: &mut NetCache,
        resized: &mut HashSet<GateId>,
    ) -> SizeJournal {
        let worst = report.worst_slack_ns();
        let mut critical: Vec<GateId> = network
            .iter_logic()
            .filter(|&g| report.slack(g) <= worst + self.config.critical_margin_ns)
            .collect();
        critical.sort_by(|&a, &b| report.slack(a).total_cmp(&report.slack(b)));
        self.visit_gates(
            network, library, placement, timing, report, cache, &critical, false, worst, resized,
        )
    }

    /// Visits non-critical gates and picks the implementation maximizing the
    /// neighborhood *total* slack, preferring smaller cells on ties — this is
    /// the relaxation / area-recovery phase.
    #[allow(clippy::too_many_arguments)]
    fn relaxation_phase(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &mut Placement,
        timing: &TimingConfig,
        report: &TimingReport,
        cache: &mut NetCache,
        resized: &mut HashSet<GateId>,
    ) -> SizeJournal {
        let worst = report.worst_slack_ns();
        let relaxed: Vec<GateId> = network
            .iter_logic()
            .filter(|&g| report.slack(g) > worst + self.config.critical_margin_ns)
            .collect();
        self.visit_gates(
            network, library, placement, timing, report, cache, &relaxed, true, worst, resized,
        )
    }

    /// Decides and applies the best drive strength for every gate in `gates`
    /// (in order).  With `threads > 1`, contiguous runs of region-disjoint
    /// gates are scored concurrently on cloned networks and applied in the
    /// original order — bit-identical to the sequential visit.
    #[allow(clippy::too_many_arguments)]
    fn visit_gates(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &mut Placement,
        timing: &TimingConfig,
        report: &TimingReport,
        cache: &mut NetCache,
        gates: &[GateId],
        relaxation: bool,
        worst_slack: f64,
        resized: &mut HashSet<GateId>,
    ) -> SizeJournal {
        let mut journal = SizeJournal::new();
        visit_in_disjoint_batches(
            network,
            placement,
            cache,
            self.config.threads,
            gates,
            |network, &g| sizing_region(network, g),
            |network, placement, cache, &g| {
                decide_best_drive(
                    network,
                    library,
                    placement,
                    timing,
                    report,
                    cache,
                    g,
                    relaxation,
                    worst_slack,
                )
            },
            |network, _placement, cache, &g, best| {
                apply_class(network, cache, &mut journal, g, best);
                resized.insert(g);
            },
        );
        journal
    }
}

impl Default for GateSizer {
    fn default() -> Self {
        GateSizer::new(SizerConfig::default())
    }
}

/// Tries every available drive strength of `gate` and returns the best one
/// if it differs from the current assignment.  Leaves the network (and the
/// cache's view of it) exactly as found.
// Takes the full evaluation context by design: every argument is a distinct
// piece of the timing state a candidate must be scored against.
#[allow(clippy::too_many_arguments)]
fn decide_best_drive(
    network: &mut Network,
    library: &Library,
    placement: &Placement,
    timing: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    gate: GateId,
    relaxation: bool,
    worst_slack_ns: f64,
) -> Option<u8> {
    let g = network.gate(gate);
    let arity = g.fanin_count();
    let function = g.gtype;
    let original_class = g.size_class;
    let drives = library.available_drives(function, arity);
    if drives.len() <= 1 {
        return None;
    }
    let fanins: Vec<GateId> = network.fanins(gate).to_vec();
    let baseline = neighborhood_eval(network, library, placement, timing, report, cache, gate);
    // Do-no-harm floor for the min-slack phase: a candidate may load the
    // fan-in drivers harder only while none of them drops below the
    // current global worst slack (or below where they already are, if
    // that is worse).  Scoring the gate's *own* re-timed slack under
    // that constraint — rather than the combined neighborhood minimum —
    // lets the upsizing frontier advance along uniformly critical paths,
    // where any upsize necessarily costs its (equally critical) driver a
    // little slack.
    let baseline_slack = baseline.min_slack_ns();
    let driver_floor = baseline.fanin_min_slack_ns.min(worst_slack_ns);

    let mut best_class = original_class;
    let mut best_metric = f64::NEG_INFINITY;
    let mut best_area = f64::INFINITY;
    for drive in drives {
        network.gate_mut(gate).size_class = drive.size_class();
        for &f in &fanins {
            cache.invalidate_loads(f);
        }
        let area =
            library.cell(function, arity, drive).map(|c| c.area_um2).unwrap_or(f64::INFINITY);
        let eval = neighborhood_eval(network, library, placement, timing, report, cache, gate);
        let metric = if relaxation {
            // Relaxation / area recovery: pick the smallest implementation
            // that does not push the neighborhood min slack below the
            // do-no-harm floor (the baseline, clamped at zero so gates
            // with abundant slack may give some of it up).  The total
            // slack acts as a tie-breaker so that, area being equal, the
            // globally faster choice wins.
            let floor = baseline_slack.min(0.0);
            if eval.min_slack_ns() + 1e-9 < floor {
                f64::NEG_INFINITY
            } else {
                -area + eval.total_slack_ns * 1e-6
            }
        } else if eval.fanin_min_slack_ns + 1e-9 < driver_floor {
            f64::NEG_INFINITY
        } else {
            eval.own_slack_ns
        };
        let better =
            metric > best_metric + 1e-9 || (metric > best_metric - 1e-9 && area < best_area);
        if better {
            best_metric = metric;
            best_class = drive.size_class();
            best_area = area;
        }
    }
    network.gate_mut(gate).size_class = original_class;
    for &f in &fanins {
        cache.invalidate_loads(f);
    }
    (best_class != original_class).then_some(best_class)
}

/// Applies a sizing decision, journaling the previous class and keeping the
/// cache coherent.
fn apply_class(
    network: &mut Network,
    cache: &mut NetCache,
    journal: &mut SizeJournal,
    gate: GateId,
    class: u8,
) {
    let old = network.gate(gate).size_class;
    journal.push((gate, old));
    network.gate_mut(gate).size_class = class;
    let fanins: Vec<GateId> = network.fanins(gate).to_vec();
    for f in fanins {
        cache.invalidate_loads(f);
    }
}

/// Reverses a phase's sizing decisions (undo journal replay).
fn rollback(network: &mut Network, cache: &mut NetCache, journal: &[(GateId, u8)]) {
    for &(g, class) in journal.iter().rev() {
        network.gate_mut(g).size_class = class;
        let fanins: Vec<GateId> = network.fanins(g).to_vec();
        for f in fanins {
            cache.invalidate_loads(f);
        }
    }
}

/// The gates whose timing a sizing decision at `gate` can read or perturb:
/// the gate, its fan-in drivers, and the sinks of all of those nets.  Two
/// gates with disjoint regions can be scored in either order (or
/// concurrently) with identical results.
fn sizing_region(network: &Network, gate: GateId) -> Vec<GateId> {
    let mut region = vec![gate];
    region.extend_from_slice(network.fanins(gate));
    region.extend_from_slice(network.fanouts(gate));
    for &f in network.fanins(gate) {
        region.extend_from_slice(network.fanouts(f));
    }
    region.sort_unstable();
    region.dedup();
    region
}

/// Returns the drive strength currently assigned to a gate (helper for
/// reports).
pub fn assigned_drive(network: &Network, gate: GateId) -> DriveStrength {
    DriveStrength::from_size_class(network.gate(gate).size_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_celllib::Library;
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_placement::{place, PlacerConfig};
    use rapids_sim::check_equivalence_random;

    fn chain_with_fanout() -> Network {
        let mut b = NetworkBuilder::new("load");
        b.inputs(["a", "b"]);
        b.gate("g0", GateType::Nand, &["a", "b"]);
        for i in 1..8 {
            b.gate(format!("g{i}"), GateType::Nand, &[&format!("g{}", i - 1), "b"]);
        }
        // Heavy fanout on g3 to give the sizer something to fix.
        for i in 0..6 {
            b.gate(format!("load{i}"), GateType::Inv, &["g3"]);
            b.output(format!("load{i}"));
        }
        b.output("g7");
        b.finish().unwrap()
    }

    #[test]
    fn sizing_reduces_or_preserves_delay() {
        let mut n = chain_with_fanout();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let outcome = GateSizer::new(SizerConfig::default()).optimize(
            &mut n,
            &lib,
            &p,
            &TimingConfig::default(),
        );
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert!(outcome.passes >= 1);
        assert!(outcome.delay_improvement_percent() >= 0.0);
    }

    #[test]
    fn sizing_changes_only_size_classes() {
        let mut n = chain_with_fanout();
        let reference = n.clone();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let _ = GateSizer::default().optimize(&mut n, &lib, &p, &TimingConfig::default());
        // Structure unchanged.
        assert_eq!(n.logic_gate_count(), reference.logic_gate_count());
        for g in n.iter_live() {
            assert_eq!(n.fanins(g), reference.fanins(g));
            assert_eq!(n.gate(g).gtype, reference.gate(g).gtype);
        }
        // Functionality unchanged.
        assert!(check_equivalence_random(&reference, &n, 256, 7).is_equivalent());
    }

    #[test]
    fn heavily_loaded_gate_gets_upsized() {
        let mut n = chain_with_fanout();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let _ = GateSizer::default().optimize(&mut n, &lib, &p, &TimingConfig::default());
        let g3 = n.find_by_name("g3").unwrap();
        assert!(
            n.gate(g3).size_class > 0,
            "the gate driving 7 sinks should not stay at minimum size"
        );
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let lib = Library::standard_035um();
        let reference = chain_with_fanout();
        let p = place(&reference, &lib, &PlacerConfig::fast(), 3);
        let run = |threads: usize| {
            let mut n = reference.clone();
            let config = SizerConfig { threads, ..SizerConfig::default() };
            let outcome =
                GateSizer::new(config).optimize(&mut n, &lib, &p, &TimingConfig::default());
            let classes: Vec<u8> = n.iter_live().map(|g| n.gate(g).size_class).collect();
            (outcome, classes)
        };
        let (o1, c1) = run(1);
        let (o8, c8) = run(8);
        assert_eq!(o1, o8, "outcomes must be identical across thread counts");
        assert_eq!(c1, c8, "final size classes must be identical across thread counts");
    }

    #[test]
    fn outcome_percentages_are_consistent() {
        let outcome = SizingOutcome {
            initial_delay_ns: 10.0,
            final_delay_ns: 9.0,
            initial_area_um2: 1000.0,
            final_area_um2: 980.0,
            resized_gates: 5,
            passes: 2,
        };
        assert!((outcome.delay_improvement_percent() - 10.0).abs() < 1e-9);
        assert!((outcome.area_change_percent() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let outcome = SizingOutcome {
            initial_delay_ns: 0.0,
            final_delay_ns: 0.0,
            initial_area_um2: 0.0,
            final_area_um2: 0.0,
            resized_gates: 0,
            passes: 0,
        };
        assert_eq!(outcome.delay_improvement_percent(), 0.0);
        assert_eq!(outcome.area_change_percent(), 0.0);
    }
}
