//! The gate sizing optimizer ("GS" in the paper's Table 1).

use rapids_celllib::{DriveStrength, Library};
use rapids_netlist::{GateId, Network};
use rapids_placement::Placement;
use rapids_timing::{Sta, TimingConfig, TimingReport};

use crate::neighborhood::{
    estimated_arrival_ns, fanin_min_slack_ns, neighborhood_slack_ns, neighborhood_total_slack_ns,
};

/// Configuration of the sizing optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct SizerConfig {
    /// Maximum number of (min-slack + relaxation) passes.
    pub max_passes: usize,
    /// Gates whose slack is within this margin of the worst slack are
    /// considered critical and visited by the min-slack phase, ns.
    pub critical_margin_ns: f64,
    /// Minimum improvement of the critical-path delay required to start
    /// another pass, ns.
    pub convergence_threshold_ns: f64,
    /// Whether the relaxation phase may downsize non-critical gates to
    /// recover area.
    pub recover_area: bool,
}

impl Default for SizerConfig {
    fn default() -> Self {
        SizerConfig {
            max_passes: 6,
            critical_margin_ns: 0.15,
            convergence_threshold_ns: 1e-4,
            recover_area: true,
        }
    }
}

impl SizerConfig {
    /// A reduced-effort configuration for tests and smoke benchmarks.
    pub fn fast() -> Self {
        SizerConfig { max_passes: 2, ..Self::default() }
    }
}

/// Summary of one sizing run.
#[derive(Debug, Clone, PartialEq)]
pub struct SizingOutcome {
    /// Critical-path delay before optimization, ns.
    pub initial_delay_ns: f64,
    /// Critical-path delay after optimization, ns.
    pub final_delay_ns: f64,
    /// Total cell area before optimization, µm².
    pub initial_area_um2: f64,
    /// Total cell area after optimization, µm².
    pub final_area_um2: f64,
    /// Number of gates whose implementation changed.
    pub resized_gates: usize,
    /// Number of optimization passes executed.
    pub passes: usize,
}

impl SizingOutcome {
    /// Delay improvement as a percentage of the initial delay.
    pub fn delay_improvement_percent(&self) -> f64 {
        if self.initial_delay_ns <= 0.0 {
            return 0.0;
        }
        100.0 * (self.initial_delay_ns - self.final_delay_ns) / self.initial_delay_ns
    }

    /// Area change as a percentage of the initial area (negative = smaller).
    pub fn area_change_percent(&self) -> f64 {
        if self.initial_area_um2 <= 0.0 {
            return 0.0;
        }
        100.0 * (self.final_area_um2 - self.initial_area_um2) / self.initial_area_um2
    }
}

/// The gate sizing optimizer.
#[derive(Debug, Clone)]
pub struct GateSizer {
    config: SizerConfig,
}

impl GateSizer {
    /// Creates a sizer with the given configuration.
    pub fn new(config: SizerConfig) -> Self {
        GateSizer { config }
    }

    /// Runs sizing on `network` in place (only `size_class` fields change;
    /// the structure and the placement are untouched) and reports the
    /// before/after metrics.
    pub fn optimize(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
    ) -> SizingOutcome {
        let initial_report = Sta::analyze(network, library, placement, timing);
        let initial_delay_ns = initial_report.critical_delay_ns();
        let initial_area_um2 = library.network_area_um2(network);
        let mut resized: std::collections::HashSet<GateId> = std::collections::HashSet::new();

        let snapshot = |network: &Network| -> Vec<u8> {
            (0..network.gate_count() as u32).map(|i| network.gate(GateId(i)).size_class).collect()
        };
        let restore = |network: &mut Network, classes: &[u8]| {
            for (i, &class) in classes.iter().enumerate() {
                network.gate_mut(GateId(i as u32)).size_class = class;
            }
        };

        let mut best_delay = initial_delay_ns;
        let mut passes = 0;
        for _ in 0..self.config.max_passes {
            passes += 1;
            // The min-slack phase and the relaxation phase are checkpointed
            // independently: a relaxation step that turns out to hurt the
            // global critical path is rolled back without discarding the
            // delay gains of the min-slack phase.
            let before_min = snapshot(network);
            let report = Sta::analyze(network, library, placement, timing);
            let changed_min =
                self.min_slack_phase(network, library, placement, timing, &report, &mut resized);
            let after_min = Sta::analyze(network, library, placement, timing).critical_delay_ns();
            if after_min > best_delay + 1e-9 {
                restore(network, &before_min);
                break;
            }
            let mut changed_relax = 0;
            if self.config.recover_area {
                let before_relax = snapshot(network);
                let report = Sta::analyze(network, library, placement, timing);
                changed_relax = self.relaxation_phase(
                    network,
                    library,
                    placement,
                    timing,
                    &report,
                    &mut resized,
                );
                let after_relax =
                    Sta::analyze(network, library, placement, timing).critical_delay_ns();
                if after_relax > after_min + 1e-9 {
                    restore(network, &before_relax);
                    changed_relax = 0;
                }
            }
            let after = Sta::analyze(network, library, placement, timing).critical_delay_ns();
            let improved = best_delay - after > self.config.convergence_threshold_ns;
            if after < best_delay {
                best_delay = after;
            }
            if changed_min + changed_relax == 0 || !improved {
                break;
            }
        }

        let final_report = Sta::analyze(network, library, placement, timing);
        SizingOutcome {
            initial_delay_ns,
            final_delay_ns: final_report.critical_delay_ns(),
            initial_area_um2,
            final_area_um2: library.network_area_um2(network),
            resized_gates: resized.len(),
            passes,
        }
    }

    /// Visits critical gates in order of increasing slack and greedily picks
    /// the drive strength that maximizes the gate's own re-timed slack,
    /// subject to the fan-in drivers staying above the do-no-harm floor
    /// (see `choose_best_drive`).
    fn min_slack_phase(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
        report: &TimingReport,
        resized: &mut std::collections::HashSet<GateId>,
    ) -> usize {
        let worst = report.worst_slack_ns();
        let mut critical: Vec<GateId> = network
            .iter_logic()
            .filter(|&g| report.slack(g) <= worst + self.config.critical_margin_ns)
            .collect();
        critical.sort_by(|&a, &b| {
            report.slack(a).partial_cmp(&report.slack(b)).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut changed = 0;
        for g in critical {
            if self.choose_best_drive(network, library, placement, timing, report, g, false) {
                resized.insert(g);
                changed += 1;
            }
        }
        changed
    }

    /// Visits non-critical gates and picks the implementation maximizing the
    /// neighborhood *total* slack, preferring smaller cells on ties — this is
    /// the relaxation / area-recovery phase.
    fn relaxation_phase(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
        report: &TimingReport,
        resized: &mut std::collections::HashSet<GateId>,
    ) -> usize {
        let worst = report.worst_slack_ns();
        let relaxed: Vec<GateId> = network
            .iter_logic()
            .filter(|&g| report.slack(g) > worst + self.config.critical_margin_ns)
            .collect();
        let mut changed = 0;
        for g in relaxed {
            if self.choose_best_drive(network, library, placement, timing, report, g, true) {
                resized.insert(g);
                changed += 1;
            }
        }
        changed
    }

    /// Tries every available drive strength of `gate` and keeps the best one.
    /// Returns `true` if the gate's implementation changed.
    // Takes the full evaluation context by design: every argument is a
    // distinct piece of the timing state a candidate must be scored against.
    #[allow(clippy::too_many_arguments)]
    fn choose_best_drive(
        &self,
        network: &mut Network,
        library: &Library,
        placement: &Placement,
        timing: &TimingConfig,
        report: &TimingReport,
        gate: GateId,
        relaxation: bool,
    ) -> bool {
        let g = network.gate(gate);
        let arity = g.fanin_count();
        let function = g.gtype;
        let original_class = g.size_class;
        let drives = library.available_drives(function, arity);
        if drives.len() <= 1 {
            return false;
        }
        let baseline_slack =
            neighborhood_slack_ns(network, library, placement, timing, report, gate);
        // Do-no-harm floor for the min-slack phase: a candidate may load the
        // fan-in drivers harder only while none of them drops below the
        // current global worst slack (or below where they already are, if
        // that is worse).  Scoring the gate's *own* re-timed slack under
        // that constraint — rather than the combined neighborhood minimum —
        // lets the upsizing frontier advance along uniformly critical paths,
        // where any upsize necessarily costs its (equally critical) driver a
        // little slack.
        let driver_floor = fanin_min_slack_ns(network, library, placement, timing, report, gate)
            .min(report.worst_slack_ns());

        let mut best_class = original_class;
        let mut best_metric = f64::NEG_INFINITY;
        let mut best_area = f64::INFINITY;
        for drive in drives {
            network.gate_mut(gate).size_class = drive.size_class();
            let area =
                library.cell(function, arity, drive).map(|c| c.area_um2).unwrap_or(f64::INFINITY);
            let metric = if relaxation {
                // Relaxation / area recovery: pick the smallest implementation
                // that does not push the neighborhood min slack below the
                // do-no-harm floor (the baseline, clamped at zero so gates
                // with abundant slack may give some of it up).  The total
                // slack acts as a tie-breaker so that, area being equal, the
                // globally faster choice wins.
                let min_slack =
                    neighborhood_slack_ns(network, library, placement, timing, report, gate);
                let floor = baseline_slack.min(0.0);
                if min_slack + 1e-9 < floor {
                    f64::NEG_INFINITY
                } else {
                    let total = neighborhood_total_slack_ns(
                        network, library, placement, timing, report, gate,
                    );
                    -area + total * 1e-6
                }
            } else {
                let drivers = fanin_min_slack_ns(network, library, placement, timing, report, gate);
                if drivers + 1e-9 < driver_floor {
                    f64::NEG_INFINITY
                } else {
                    report.required(gate)
                        - estimated_arrival_ns(network, library, placement, timing, report, gate)
                }
            };
            let better =
                metric > best_metric + 1e-9 || (metric > best_metric - 1e-9 && area < best_area);
            if better {
                best_metric = metric;
                best_class = drive.size_class();
                best_area = area;
            }
        }
        network.gate_mut(gate).size_class = best_class;
        best_class != original_class
    }
}

impl Default for GateSizer {
    fn default() -> Self {
        GateSizer::new(SizerConfig::default())
    }
}

/// Returns the drive strength currently assigned to a gate (helper for
/// reports).
pub fn assigned_drive(network: &Network, gate: GateId) -> DriveStrength {
    DriveStrength::from_size_class(network.gate(gate).size_class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_celllib::Library;
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_placement::{place, PlacerConfig};
    use rapids_sim::check_equivalence_random;

    fn chain_with_fanout() -> Network {
        let mut b = NetworkBuilder::new("load");
        b.inputs(["a", "b"]);
        b.gate("g0", GateType::Nand, &["a", "b"]);
        for i in 1..8 {
            b.gate(format!("g{i}"), GateType::Nand, &[&format!("g{}", i - 1), "b"]);
        }
        // Heavy fanout on g3 to give the sizer something to fix.
        for i in 0..6 {
            b.gate(format!("load{i}"), GateType::Inv, &["g3"]);
            b.output(format!("load{i}"));
        }
        b.output("g7");
        b.finish().unwrap()
    }

    #[test]
    fn sizing_reduces_or_preserves_delay() {
        let mut n = chain_with_fanout();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let outcome = GateSizer::new(SizerConfig::default()).optimize(
            &mut n,
            &lib,
            &p,
            &TimingConfig::default(),
        );
        assert!(outcome.final_delay_ns <= outcome.initial_delay_ns + 1e-9);
        assert!(outcome.passes >= 1);
        assert!(outcome.delay_improvement_percent() >= 0.0);
    }

    #[test]
    fn sizing_changes_only_size_classes() {
        let mut n = chain_with_fanout();
        let reference = n.clone();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let _ = GateSizer::default().optimize(&mut n, &lib, &p, &TimingConfig::default());
        // Structure unchanged.
        assert_eq!(n.logic_gate_count(), reference.logic_gate_count());
        for g in n.iter_live() {
            assert_eq!(n.fanins(g), reference.fanins(g));
            assert_eq!(n.gate(g).gtype, reference.gate(g).gtype);
        }
        // Functionality unchanged.
        assert!(check_equivalence_random(&reference, &n, 256, 7).is_equivalent());
    }

    #[test]
    fn heavily_loaded_gate_gets_upsized() {
        let mut n = chain_with_fanout();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 3);
        let _ = GateSizer::default().optimize(&mut n, &lib, &p, &TimingConfig::default());
        let g3 = n.find_by_name("g3").unwrap();
        assert!(
            n.gate(g3).size_class > 0,
            "the gate driving 7 sinks should not stay at minimum size"
        );
    }

    #[test]
    fn outcome_percentages_are_consistent() {
        let outcome = SizingOutcome {
            initial_delay_ns: 10.0,
            final_delay_ns: 9.0,
            initial_area_um2: 1000.0,
            final_area_um2: 980.0,
            resized_gates: 5,
            passes: 2,
        };
        assert!((outcome.delay_improvement_percent() - 10.0).abs() < 1e-9);
        assert!((outcome.area_change_percent() + 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let outcome = SizingOutcome {
            initial_delay_ns: 0.0,
            final_delay_ns: 0.0,
            initial_area_um2: 0.0,
            final_area_um2: 0.0,
            resized_gates: 0,
            passes: 0,
        };
        assert_eq!(outcome.delay_improvement_percent(), 0.0);
        assert_eq!(outcome.area_change_percent(), 0.0);
    }
}
