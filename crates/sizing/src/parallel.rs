//! Deterministic work partitioning for parallel candidate scoring.
//!
//! The min-slack and relaxation phases visit items (gates or supergates) in
//! a fixed priority order; a decision for one item only perturbs the timing
//! of its *region* (the nets it loads and drives).  Consecutive items whose
//! regions are pairwise disjoint can therefore be scored concurrently and
//! applied in the original order, reproducing the sequential decisions.
//!
//! # The `threads` determinism contract
//!
//! This module is the one normative statement of what every `threads` knob
//! in the workspace (`SizerConfig::threads`, `OptimizerConfig::threads`,
//! `PipelineConfig::threads`, `table1 --threads`) guarantees:
//!
//! * **Decisions are thread-count invariant.**  Every thread count visits
//!   the same items in the same order and accepts the same resizes and
//!   swaps — including inverting (ES) swaps, whose probe inverters are
//!   inserted and popped symmetrically on worker clones and on the main
//!   network, so candidate ids and hosted positions agree by construction.
//! * **Sizing results are bit-exact** across thread counts: a resize leaves
//!   no trace beyond the chosen class, so replaying identical decisions
//!   yields identical networks and reports.
//! * **Rewiring numbers can differ in the final ulp** after a rolled-back
//!   pass: sequential probing permutes the main network's fan-out list
//!   order (apply/undo uses `swap_remove`), worker clones permute only
//!   their private copies, and Elmore/star sums fold in fan-out order.
//!   Accepted decisions and swap counts still match exactly; only the last
//!   bits of the floating-point delay/area sums may move.
//! * **Legalization nudges are accept-time-only.**  When the optimizer
//!   runs with a legalization row model, the free-slot placement of an
//!   accepted inverter is decided by the *apply* seam on the main thread,
//!   in the deterministic acceptance order; scoring probes (which run on
//!   worker clones) always host at the co-located position and never read
//!   the shared occupancy.  Nudged positions therefore agree for every
//!   thread count by construction.
//! * **Within-level STA parallelism is bit-identical.**  The levelized
//!   STA kernel (`rapids_timing::levelized`) may split a level's gates
//!   across scoped threads; gates within a level are independent (all
//!   fan-ins live in strictly lower levels) and each gate's fold over its
//!   own pins runs in the same order on every thread count, so arrivals,
//!   required times and the reports built from them are bit-identical for
//!   any `threads` value — full sweeps and dirty-cone updates alike.
//! * **Thread-per-design sharding** (`table1 --threads`,
//!   `run_suite_threaded`) returns results in input order regardless of
//!   completion order, so whole-suite reports are bit-identical for every
//!   thread count.

use rapids_netlist::{GateId, Network};
use rapids_placement::Placement;
use rapids_timing::NetCache;

/// Splits a visit order into maximal contiguous batches whose per-item
/// regions are pairwise disjoint.
///
/// A batch is closed at the *first* item overlapping it, which preserves the
/// sequential contract: when an item is scored, every earlier item that
/// could influence its region has already been applied (it sits in an
/// earlier batch), and the in-batch items that have not been applied yet
/// cannot influence it (disjoint regions).
pub fn contiguous_disjoint_batches(
    regions: &[Vec<GateId>],
    slots: usize,
) -> Vec<std::ops::Range<usize>> {
    let mut batches = Vec::new();
    let mut used = vec![false; slots];
    let mut start = 0usize;
    for (i, region) in regions.iter().enumerate() {
        let overlaps = region.iter().any(|g| used[g.index()]);
        if overlaps {
            batches.push(start..i);
            used.fill(false);
            start = i;
        }
        for g in region {
            used[g.index()] = true;
        }
    }
    if start < regions.len() {
        batches.push(start..regions.len());
    }
    batches
}

/// Visits `items` in order, scoring each with `score` and applying the
/// returned decision with `apply` — the shared engine behind both the gate
/// sizer's phases and the rewiring loop's supergate visits.
///
/// With `threads <= 1` this is the plain sequential loop.  Otherwise the
/// items are split into contiguous batches of pairwise-disjoint regions
/// (via [`contiguous_disjoint_batches`] over `region_of`); each batch is
/// scored concurrently on per-worker clones of the network *and placement*
/// (with fresh caches, which memoize the same values the main cache would)
/// and the decisions are applied in the original order, reproducing the
/// sequential decisions.
///
/// The placement travels mutably because inverting-swap probes host the
/// inverters they insert: on a worker that hosting lands on the private
/// clone and is discarded with it, while sizing probes and non-inverting
/// swaps never touch the placement at all.
// Takes the full scoring context by design: network, placement and cache are
// the three pieces of mutable state a probe perturbs and restores, and the
// three closures are the seams the two optimizers plug into.
#[allow(clippy::too_many_arguments)]
pub fn visit_in_disjoint_batches<T: Sync, D: Send>(
    network: &mut Network,
    placement: &mut Placement,
    cache: &mut NetCache,
    threads: usize,
    items: &[T],
    region_of: impl Fn(&Network, &T) -> Vec<GateId>,
    score: impl Fn(&mut Network, &mut Placement, &mut NetCache, &T) -> Option<D> + Sync,
    mut apply: impl FnMut(&mut Network, &mut Placement, &mut NetCache, &T, D),
) {
    if threads <= 1 {
        for item in items {
            if let Some(decision) = score(network, placement, cache, item) {
                apply(network, placement, cache, item, decision);
            }
        }
        return;
    }
    let regions: Vec<Vec<GateId>> = items.iter().map(|item| region_of(network, item)).collect();
    for range in contiguous_disjoint_batches(&regions, network.gate_count()) {
        let batch = &items[range];
        if batch.len() < 2 {
            for item in batch {
                if let Some(decision) = score(network, placement, cache, item) {
                    apply(network, placement, cache, item, decision);
                }
            }
            continue;
        }
        let chunk = batch.len().div_ceil(threads);
        let frozen: &Network = network;
        let frozen_placement: &Placement = placement;
        let score_ref = &score;
        let decisions: Vec<Option<D>> = std::thread::scope(|s| {
            let workers: Vec<_> = batch
                .chunks(chunk)
                .map(|slice| {
                    s.spawn(move || {
                        let mut net = frozen.clone();
                        let mut pl = frozen_placement.clone();
                        let mut local = NetCache::for_network(&net);
                        slice
                            .iter()
                            .map(|item| score_ref(&mut net, &mut pl, &mut local, item))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().expect("scoring worker panicked")).collect()
        });
        for (item, decision) in batch.iter().zip(decisions) {
            if let Some(decision) = decision {
                apply(network, placement, cache, item, decision);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ids: &[u32]) -> Vec<GateId> {
        ids.iter().map(|&i| GateId(i)).collect()
    }

    #[test]
    fn disjoint_items_form_one_batch() {
        let regions = vec![r(&[0, 1]), r(&[2, 3]), r(&[4])];
        assert_eq!(contiguous_disjoint_batches(&regions, 8), vec![0..3]);
    }

    #[test]
    fn overlap_closes_the_batch() {
        let regions = vec![r(&[0, 1]), r(&[1, 2]), r(&[3]), r(&[2, 3])];
        assert_eq!(contiguous_disjoint_batches(&regions, 8), vec![0..1, 1..3, 3..4]);
    }

    #[test]
    fn empty_input_yields_no_batches() {
        assert!(contiguous_disjoint_batches(&[], 4).is_empty());
    }

    #[test]
    fn batches_cover_every_item_exactly_once() {
        let regions =
            vec![r(&[0]), r(&[0]), r(&[1]), r(&[1]), r(&[0, 1]), r(&[2]), r(&[3]), r(&[2])];
        let batches = contiguous_disjoint_batches(&regions, 8);
        let mut covered = Vec::new();
        for b in &batches {
            covered.extend(b.clone());
        }
        assert_eq!(covered, (0..regions.len()).collect::<Vec<_>>());
    }
}
