//! # rapids-sizing
//!
//! Gate sizing on a placed netlist, following the spirit of Coudert's
//! constrained delay/area optimization (the "GS" algorithm of the paper's
//! evaluation): an iterative **min-slack improvement** phase that upsizes or
//! downsizes cells on and around the critical path, alternating with a
//! **relaxation / area-recovery** phase that downsizes cells with abundant
//! slack to escape local minima and recover area.
//!
//! Every candidate implementation change is evaluated with a *neighborhood*
//! slack estimate (the gate and its fan-in drivers are re-timed against the
//! arrival/required times of the last full analysis), so a pass touches each
//! gate only with local work; full static timing analysis runs once per pass.
//!
//! The same "choose the best implementation of each node from a discrete
//! candidate set" machinery is reused by `rapids-core` to drive
//! supergate-based rewiring, exactly as §5 of the paper describes.
//!
//! ```
//! use rapids_celllib::Library;
//! use rapids_circuits::benchmark;
//! use rapids_placement::{place, PlacerConfig};
//! use rapids_sizing::{GateSizer, SizerConfig};
//! use rapids_timing::TimingConfig;
//!
//! let mut network = benchmark("c432").unwrap();
//! let library = Library::standard_035um();
//! let placement = place(&network, &library, &PlacerConfig::fast(), 1);
//! let outcome = GateSizer::new(SizerConfig::fast())
//!     .optimize(&mut network, &library, &placement, &TimingConfig::default());
//! assert!(outcome.final_delay_ns <= outcome.initial_delay_ns);
//! ```

pub mod cancel;
pub mod neighborhood;
pub mod parallel;
pub mod sizer;

pub use cancel::CancelToken;
pub use neighborhood::{
    estimated_arrival_cached, estimated_arrival_ns, fanin_min_slack_ns, neighborhood_eval,
    neighborhood_slack_ns, NeighborhoodEval,
};
pub use parallel::contiguous_disjoint_batches;
pub use sizer::{GateSizer, SizerConfig, SizingOutcome};
