//! Neighborhood (local) timing evaluation.
//!
//! Candidate implementation changes — a different drive strength in gate
//! sizing, or a different pin permutation in supergate rewiring — are scored
//! without a full timing analysis: the gate and its fan-in drivers are
//! re-timed against the arrival and required times of the last full STA.
//! This is the neighborhood search device of Coudert's sizing heuristic that
//! §5 of the paper adopts.

use rapids_celllib::Library;
use rapids_netlist::{GateId, Network};
use rapids_placement::Placement;
use rapids_timing::{gate_output_delay, NetCache, TimingConfig, TimingReport};

/// Estimated worst arrival time at the output of `gate`, recomputed from the
/// frozen arrival times of its fan-ins plus freshly evaluated wire and cell
/// delays (which therefore reflect any locally changed size classes).
pub fn estimated_arrival_ns(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    report: &TimingReport,
    gate: GateId,
) -> f64 {
    let g = network.gate(gate);
    if g.gtype.is_source() {
        return 0.0;
    }
    let own_delay = gate_output_delay(network, library, placement, config, gate).worst();
    let mut worst_input = 0.0f64;
    for &f in &g.fanins {
        let wire = report.net(f).and_then(|nd| nd.delay_to_ns(gate)).unwrap_or(0.0);
        worst_input = worst_input.max(report.arrival(f).worst() + wire);
    }
    worst_input + own_delay
}

/// Worst slack over the neighborhood of `gate`: the gate itself and its
/// logic fan-in drivers, each re-timed with [`estimated_arrival_ns`] against
/// the required times of the last full analysis.
///
/// Changing the implementation of `gate` affects its own delay *and* the load
/// seen by every fan-in driver (their pin capacitance changes), which is why
/// the fan-ins are part of the neighborhood.
pub fn neighborhood_slack_ns(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    report: &TimingReport,
    gate: GateId,
) -> f64 {
    let mut worst = report.required(gate)
        - estimated_arrival_ns(network, library, placement, config, report, gate);
    for &f in network.fanins(gate) {
        if network.gate(f).gtype.is_source() {
            continue;
        }
        let slack_f = report.required(f)
            - estimated_arrival_ns(network, library, placement, config, report, f);
        worst = worst.min(slack_f);
    }
    worst
}

/// Worst re-timed slack over the *logic fan-in drivers* of `gate` alone
/// (`+INF` when every fan-in is a primary input or constant).
///
/// The min-slack phase uses this as a do-no-harm constraint: a candidate
/// implementation of `gate` may load its drivers harder only as long as
/// none of them falls below the current global worst slack.  Folding the
/// drivers into a combined minimum instead (as an earlier version did)
/// deadlocks on uniformly critical paths: every upsize degrades the
/// equally-critical driver, so the combined minimum can never improve and
/// no gate past the first ever gets upsized.
pub fn fanin_min_slack_ns(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    report: &TimingReport,
    gate: GateId,
) -> f64 {
    let mut worst = f64::INFINITY;
    for &f in network.fanins(gate) {
        if network.gate(f).gtype.is_source() {
            continue;
        }
        let slack_f = report.required(f)
            - estimated_arrival_ns(network, library, placement, config, report, f);
        worst = worst.min(slack_f);
    }
    worst
}

/// Sum of the neighborhood slacks (used by the relaxation phase, which
/// maximizes total slack rather than the minimum).
pub fn neighborhood_total_slack_ns(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    report: &TimingReport,
    gate: GateId,
) -> f64 {
    let mut total = report.required(gate)
        - estimated_arrival_ns(network, library, placement, config, report, gate);
    for &f in network.fanins(gate) {
        if network.gate(f).gtype.is_source() {
            continue;
        }
        total += report.required(f)
            - estimated_arrival_ns(network, library, placement, config, report, f);
    }
    total
}

/// All three neighborhood quantities of one gate, computed in a single
/// sweep.
///
/// The separate helpers above re-derive the same estimated arrivals up to
/// three times per candidate probe; the sizing hot loop uses this combined
/// form (plus a [`NetCache`]) instead.  Every field is bit-identical to the
/// corresponding stand-alone helper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborhoodEval {
    /// `required − estimated arrival` of the gate itself
    /// (= [`estimated_arrival_ns`] folded into a slack).
    pub own_slack_ns: f64,
    /// Worst re-timed slack over the logic fan-in drivers
    /// (= [`fanin_min_slack_ns`]).
    pub fanin_min_slack_ns: f64,
    /// Sum of the neighborhood slacks (= [`neighborhood_total_slack_ns`]).
    pub total_slack_ns: f64,
}

impl NeighborhoodEval {
    /// Worst slack over the whole neighborhood
    /// (= [`neighborhood_slack_ns`]).
    pub fn min_slack_ns(&self) -> f64 {
        self.own_slack_ns.min(self.fanin_min_slack_ns)
    }
}

/// [`estimated_arrival_ns`] with the fresh wire/cell delays served from a
/// [`NetCache`]; bit-identical to the uncached helper as long as the cache's
/// invalidation protocol was followed.
pub fn estimated_arrival_cached(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    gate: GateId,
) -> f64 {
    let g = network.gate(gate);
    if g.gtype.is_source() {
        return 0.0;
    }
    let own_delay = cache.gate_output_delay(network, library, placement, config, gate).worst();
    let mut worst_input = 0.0f64;
    for &f in &g.fanins {
        let wire = report.net(f).and_then(|nd| nd.delay_to_ns(gate)).unwrap_or(0.0);
        worst_input = worst_input.max(report.arrival(f).worst() + wire);
    }
    worst_input + own_delay
}

/// Computes the full [`NeighborhoodEval`] of one gate in a single sweep over
/// the gate and its logic fan-in drivers.
pub fn neighborhood_eval(
    network: &Network,
    library: &Library,
    placement: &Placement,
    config: &TimingConfig,
    report: &TimingReport,
    cache: &mut NetCache,
    gate: GateId,
) -> NeighborhoodEval {
    let own_slack_ns = report.required(gate)
        - estimated_arrival_cached(network, library, placement, config, report, cache, gate);
    let mut fanin_min_slack_ns = f64::INFINITY;
    let mut total_slack_ns = own_slack_ns;
    for &f in network.fanins(gate) {
        if network.gate(f).gtype.is_source() {
            continue;
        }
        let slack_f = report.required(f)
            - estimated_arrival_cached(network, library, placement, config, report, cache, f);
        fanin_min_slack_ns = fanin_min_slack_ns.min(slack_f);
        total_slack_ns += slack_f;
    }
    NeighborhoodEval { own_slack_ns, fanin_min_slack_ns, total_slack_ns }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_celllib::{DriveStrength, Library};
    use rapids_netlist::{GateType, NetworkBuilder};
    use rapids_placement::{place, PlacerConfig};
    use rapids_timing::Sta;

    fn setup() -> (Network, Library, Placement, TimingConfig) {
        let mut b = NetworkBuilder::new("nb");
        b.inputs(["a", "b", "c"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("n2", GateType::Nand, &["n1", "c"]);
        b.gate("f", GateType::Nor, &["n2", "n1"]);
        b.output("f");
        let n = b.finish().unwrap();
        let lib = Library::standard_035um();
        let p = place(&n, &lib, &PlacerConfig::fast(), 2);
        (n, lib, p, TimingConfig::default())
    }

    #[test]
    fn estimate_matches_full_sta_without_changes() {
        let (n, lib, p, cfg) = setup();
        let report = Sta::analyze(&n, &lib, &p, &cfg);
        for g in n.iter_logic() {
            let est = estimated_arrival_ns(&n, &lib, &p, &cfg, &report, g);
            let real = report.arrival(g).worst();
            // The estimate uses worst-case polarity mixing so it may be a bit
            // conservative, but it must never be optimistic by more than
            // floating-point noise and should be close.
            assert!(est >= real - 1e-9, "estimate optimistic at {g}");
            assert!(est <= real + 0.2, "estimate far off at {g}: {est} vs {real}");
        }
    }

    #[test]
    fn upsizing_improves_neighborhood_slack_of_loaded_gate() {
        let (mut n, lib, p, cfg) = setup();
        let report = Sta::analyze(&n, &lib, &p, &cfg);
        let n1 = n.find_by_name("n1").unwrap();
        let before = neighborhood_slack_ns(&n, &lib, &p, &cfg, &report, n1);
        n.gate_mut(n1).size_class = DriveStrength::X8.size_class();
        let after = neighborhood_slack_ns(&n, &lib, &p, &cfg, &report, n1);
        assert!(after > before, "upsizing a multi-fanout gate should help: {before} -> {after}");
    }

    #[test]
    fn source_gates_have_zero_estimated_arrival() {
        let (n, lib, p, cfg) = setup();
        let report = Sta::analyze(&n, &lib, &p, &cfg);
        let a = n.find_by_name("a").unwrap();
        assert_eq!(estimated_arrival_ns(&n, &lib, &p, &cfg, &report, a), 0.0);
    }

    #[test]
    fn combined_eval_matches_standalone_helpers() {
        let (mut n, lib, p, cfg) = setup();
        let report = Sta::analyze(&n, &lib, &p, &cfg);
        let mut cache = rapids_timing::NetCache::for_network(&n);
        let gates: Vec<_> = n.iter_logic().collect();
        for &g in &gates {
            let eval = neighborhood_eval(&n, &lib, &p, &cfg, &report, &mut cache, g);
            assert_eq!(eval.min_slack_ns(), neighborhood_slack_ns(&n, &lib, &p, &cfg, &report, g));
            assert_eq!(eval.fanin_min_slack_ns, fanin_min_slack_ns(&n, &lib, &p, &cfg, &report, g));
            assert_eq!(
                eval.total_slack_ns,
                neighborhood_total_slack_ns(&n, &lib, &p, &cfg, &report, g)
            );
        }
        // Resize a gate, invalidate the affected fan-in nets, and the cached
        // eval must still match the (cache-free) helpers bit for bit.
        let n1 = n.find_by_name("n1").unwrap();
        let fanins: Vec<_> = n.fanins(n1).to_vec();
        n.gate_mut(n1).size_class = DriveStrength::X8.size_class();
        for f in fanins {
            cache.invalidate_loads(f);
        }
        for &g in &gates {
            let eval = neighborhood_eval(&n, &lib, &p, &cfg, &report, &mut cache, g);
            assert_eq!(eval.min_slack_ns(), neighborhood_slack_ns(&n, &lib, &p, &cfg, &report, g));
        }
    }

    #[test]
    fn total_slack_bounded_by_min_slack_times_neighborhood_size() {
        let (n, lib, p, cfg) = setup();
        let report = Sta::analyze(&n, &lib, &p, &cfg);
        let f = n.find_by_name("f").unwrap();
        let members = 1 + n.fanins(f).iter().filter(|&&d| !n.gate(d).gtype.is_source()).count();
        let min = neighborhood_slack_ns(&n, &lib, &p, &cfg, &report, f);
        let total = neighborhood_total_slack_ns(&n, &lib, &p, &cfg, &report, f);
        // Every member's slack is ≥ the minimum, so the sum is bounded below.
        assert!(total >= min * members as f64 - 1e-9);
    }
}
