//! Cooperative cancellation for long-running optimization loops.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between an optimizer
//! and whoever wants to stop it early (a per-job watchdog, a signal handler,
//! a test).  Cancellation is *cooperative*: the pass loops in
//! [`GateSizer`](crate::GateSizer) (and, one crate up, the rewiring
//! optimizer) poll the token at pass boundaries and return their current
//! best result instead of starting another pass.  Nothing is torn down
//! mid-pass, so a cancelled run still leaves the network in a consistent
//! state — it is simply a result computed with fewer passes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag polled at optimization pass boundaries.
///
/// Clones observe the same flag; `cancel` is idempotent and never blocks.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation (idempotent).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_clear_and_latches() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }
}
