//! Cost of a full static timing analysis with the star/Elmore interconnect
//! model — the inner loop of every optimizer pass (§5/§6 run-time claims).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rapids_celllib::Library;
use rapids_circuits::benchmark;
use rapids_placement::{place, PlacerConfig};
use rapids_timing::{Sta, TimingConfig};

fn bench_sta(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_timing_analysis");
    let library = Library::standard_035um();
    for name in ["c432", "c1908"] {
        let network = benchmark(name).expect("suite benchmark");
        let placement = place(&network, &library, &PlacerConfig::fast(), 5);
        group.throughput(criterion::Throughput::Elements(network.logic_gate_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &network, |b, n| {
            b.iter(|| {
                Sta::analyze(
                    std::hint::black_box(n),
                    &library,
                    &placement,
                    &TimingConfig::default(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sta);
criterion_main!(benches);
