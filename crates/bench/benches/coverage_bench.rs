//! §6 claim: on average 27.6 % of gates are covered by non-trivial
//! supergates, with supergates of up to 43 inputs.  Measures the statistics
//! computation and prints the observed coverage for a few suite circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rapids_circuits::benchmark;
use rapids_core::supergate::extract_supergates;
use rapids_core::SupergateStatistics;

fn bench_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("supergate_coverage");
    for name in ["alu2", "c499", "c1908"] {
        let network = benchmark(name).expect("suite benchmark");
        let extraction = extract_supergates(&network);
        let stats = SupergateStatistics::compute(&network, &extraction);
        eprintln!(
            "{name}: coverage {:.1}% largest L={} redundancies={}",
            stats.coverage_percent(),
            stats.largest_inputs,
            stats.redundancy_count
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &network, |b, n| {
            b.iter(|| {
                let ex = extract_supergates(std::hint::black_box(n));
                SupergateStatistics::compute(n, &ex)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coverage);
criterion_main!(benches);
