//! Ablation studies called out in `DESIGN.md`: sensitivity of the `gsg+GS`
//! result to interconnect resistivity and to the optimizer's simulation
//! self-check.  Prints the observed improvements alongside the timing
//! measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rapids_bench::table1::{run_benchmark, FlowConfig};
use rapids_celllib::Library;
use rapids_circuits::benchmark;
use rapids_core::{Optimizer, OptimizerConfig, OptimizerKind};
use rapids_placement::{place, PlacerConfig};
use rapids_timing::TimingConfig;

/// Sweep the wire resistance: higher resistivity makes interconnect dominate
/// and should increase the value of rewiring.
fn bench_resistivity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_resistivity");
    group.sample_size(10);
    let library = Library::standard_035um();
    let network = benchmark("c432").expect("suite benchmark");
    let placement = place(&network, &library, &PlacerConfig::fast(), 11);
    for factor in [1.0_f64, 4.0] {
        let timing =
            TimingConfig { unit_resistance_kohm_per_cm: 2.4 * factor, ..TimingConfig::default() };
        let mut working = network.clone();
        let outcome = Optimizer::new(OptimizerConfig::fast(OptimizerKind::Rewiring)).optimize(
            &mut working,
            &library,
            &placement,
            &timing,
        );
        eprintln!(
            "resistance x{factor}: gsg improvement {:.2}% ({} swaps)",
            outcome.delay_improvement_percent(),
            outcome.swaps_applied
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r_x{factor}")),
            &timing,
            |b, timing| {
                b.iter(|| {
                    let mut n = network.clone();
                    Optimizer::new(OptimizerConfig::fast(OptimizerKind::Rewiring))
                        .optimize(&mut n, &library, &placement, timing)
                });
            },
        );
    }
    group.finish();
}

/// Measure the overhead of the optional per-run simulation self-check.
fn bench_verification_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_verification");
    group.sample_size(10);
    for verify in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if verify { "verify_on" } else { "verify_off" }),
            &verify,
            |b, &verify| {
                b.iter(|| {
                    let mut config = FlowConfig::fast();
                    config.optimizer.verify_with_simulation = verify;
                    run_benchmark(std::hint::black_box("c432"), &config)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_resistivity_sweep, bench_verification_overhead);
criterion_main!(benches);
