//! §3.2 claim: supergate extraction is linear time.  Measures extraction on
//! suite circuits of increasing size; the per-gate cost should stay flat.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rapids_circuits::benchmark;
use rapids_core::supergate::extract_supergates;

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("supergate_extraction");
    for name in ["c432", "c1908", "c3540"] {
        let network = benchmark(name).expect("suite benchmark");
        group.throughput(criterion::Throughput::Elements(network.logic_gate_count() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &network, |b, n| {
            b.iter(|| extract_supergates(std::hint::black_box(n)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
