//! Fig. 1 / Table 1 column 14: redundancies found during supergate
//! extraction.  Measures the scan on suite circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rapids_circuits::benchmark;
use rapids_core::redundancy::find_redundancies;
use rapids_core::supergate::extract_supergates;

fn bench_redundancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("redundancy_scan");
    for name in ["c432", "c1908", "i8"] {
        let network = benchmark(name).expect("suite benchmark");
        let extraction = extract_supergates(&network);
        let findings = find_redundancies(&extraction);
        eprintln!("{name}: {} redundancies found during extraction", findings.len());
        group.bench_with_input(BenchmarkId::from_parameter(name), &extraction, |b, ex| {
            b.iter(|| find_redundancies(std::hint::black_box(ex)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_redundancy);
criterion_main!(benches);
