//! End-to-end Table 1 flow (generate → map → place → time → gsg / GS /
//! gsg+GS) on a small suite subset; the full table is produced by the
//! `table1` binary.  The measured quantity corresponds to the CPU-time
//! columns 7–9 of Table 1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rapids_bench::table1::{run_benchmark, FlowConfig};

fn bench_flow(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_flow");
    group.sample_size(10);
    for name in ["c432", "alu2"] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, &name| {
            b.iter(|| run_benchmark(std::hint::black_box(name), &FlowConfig::fast()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flow);
criterion_main!(benches);
