//! STA kernel micro-benchmark: times full-sweep and dirty-cone update in
//! isolation on the largest suite designs, so kernel regressions are
//! visible without a whole-suite `table1` run.
//!
//! For each design the harness times:
//!
//! * `scalar` — the reference analyzer (`Sta::analyze_reference`): per-gate
//!   pointer-chasing sweeps, exactly the pre-kernel engine;
//! * `levelized ×1` — the batched struct-of-arrays kernel, single thread;
//! * `levelized ×N` — the same kernel with within-level parallelism;
//! * `update` — dirty-cone updates of an [`IncrementalSta`] under a seeded
//!   stream of single-gate resizes, 1 thread vs N threads.
//!
//! Every timed variant is also checked for **bit-identity** against the
//! scalar reference — the harness is a correctness gate as much as a timer.
//!
//! Usage: `sta_kernel [--smoke] [--threads N] [--iters N] [--designs N]`
//!
//! `--smoke` reduces iteration counts and *asserts* that the levelized full
//! sweep is not slower than the scalar reference on the largest design
//! (with a generous 1.5× margin to absorb machine noise); CI runs this
//! mode.  Exit status 1 on assertion failure.

use std::time::Instant;

use rapids_celllib::Library;
use rapids_circuits::{benchmark, suite_names};
use rapids_netlist::{GateId, Network};
use rapids_placement::{place, Placement, PlacerConfig};
use rapids_timing::{levelized, IncrementalSta, Sta, TimingConfig, TimingReport};

struct Args {
    smoke: bool,
    threads: usize,
    iters: usize,
    designs: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        iters: 15,
        designs: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {
                args.smoke = true;
                args.iters = 5;
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--iters" => {
                args.iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--iters needs a number"));
            }
            "--designs" => {
                args.designs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--designs needs a number"));
            }
            "--help" | "-h" => {
                eprintln!("usage: sta_kernel [--smoke] [--threads N] [--iters N] [--designs N]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("sta_kernel: {msg}");
    std::process::exit(2);
}

/// Asserts two reports are bit-identical over the live gates.
fn assert_identical(network: &Network, a: &TimingReport, b: &TimingReport, what: &str) {
    assert_eq!(a.critical_delay_ns(), b.critical_delay_ns(), "{what}: critical delay drifted");
    assert_eq!(a.required_time_ns(), b.required_time_ns(), "{what}: required time drifted");
    for g in network.iter_live() {
        assert_eq!(a.arrival(g), b.arrival(g), "{what}: arrival drifted at {g}");
        assert_eq!(a.required(g), b.required(g), "{what}: required drifted at {g}");
    }
}

/// Median-free simple timer: best of `iters` runs (the least-noise estimate
/// for a single-machine smoke) plus the mean.
fn time_runs<R>(iters: usize, mut f: impl FnMut() -> R) -> (f64, f64, R) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    let mut last = None;
    for _ in 0..iters {
        let start = Instant::now();
        let r = f();
        let dt = start.elapsed().as_secs_f64();
        best = best.min(dt);
        total += dt;
        last = Some(r);
    }
    (best, total / iters as f64, last.expect("iters > 0"))
}

fn main() {
    let args = parse_args();
    let library = Library::standard_035um();
    let timing = TimingConfig::default();

    // Pick the largest suite designs by live gate count.
    let mut designs: Vec<(String, Network)> = suite_names()
        .iter()
        .map(|name| {
            let n = benchmark(name).expect("suite names are all generable");
            (name.to_string(), n)
        })
        .collect();
    designs.sort_by_key(|(_, n)| std::cmp::Reverse(n.live_gate_count()));
    designs.truncate(args.designs.max(1));

    println!(
        "sta_kernel: full-sweep + dirty-cone timings, {} iters, {} threads (smoke={})",
        args.iters, args.threads, args.smoke
    );
    println!(
        "{:<10} {:>7}  {:>11} {:>13} {:>13}  {:>8} {:>7}  {:>11} {:>11}",
        "design",
        "gates",
        "scalar_ms",
        "lev_x1_ms",
        "lev_xN_ms",
        "speedup",
        "dedup",
        "upd_x1_ms",
        "upd_xN_ms",
    );

    let mut smoke_ok = true;
    for (i, (name, network)) in designs.iter().enumerate() {
        let placement: Placement = place(network, &library, &PlacerConfig::fast(), 42);

        // Full sweeps.
        let (scalar_best, _, scalar_report) = time_runs(args.iters, || {
            Sta::analyze_reference(network, &library, &placement, &timing)
        });
        let (lev1_best, _, lev1_report) =
            time_runs(args.iters, || Sta::analyze(network, &library, &placement, &timing));
        let (levn_best, _, levn_report) = time_runs(args.iters, || {
            Sta::analyze_with_threads(network, &library, &placement, &timing, args.threads)
        });
        assert_identical(network, &scalar_report, &lev1_report, "levelized x1");
        assert_identical(network, &scalar_report, &levn_report, "levelized xN");
        let (_, stats) = levelized::analyze_with_stats(network, &library, &placement, &timing, 1);

        // Dirty-cone updates under a seeded resize stream (the sizing
        // workload shape): each step resizes one logic gate and re-times.
        let gates: Vec<GateId> = network.iter_logic().collect();
        let steps = if args.smoke { 40 } else { 200 };
        let update_time = |threads: usize| {
            let mut n = network.clone();
            let mut inc =
                IncrementalSta::new_with_threads(&n, &library, &placement, &timing, threads);
            let mut rng: u64 = 0x5eed;
            let start = Instant::now();
            for step in 0..steps {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let g = gates[(rng >> 33) as usize % gates.len()];
                n.gate_mut(g).size_class = (step % 4) as u8;
                inc.update(&n, &library, &placement, &[g]);
            }
            let dt = start.elapsed().as_secs_f64();
            (dt, inc)
        };
        let (upd1_s, inc1) = update_time(1);
        let (updn_s, incn) = update_time(args.threads);
        // The two engines walked the same stream: states must agree with
        // each other and with a from-scratch reference analysis.
        {
            let mut n = network.clone();
            let mut rng: u64 = 0x5eed;
            for step in 0..steps {
                rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let g = gates[(rng >> 33) as usize % gates.len()];
                n.gate_mut(g).size_class = (step % 4) as u8;
            }
            inc1.verify_matches_full(&n, &library, &placement)
                .expect("serial incremental state must match the reference analysis");
            assert_identical(&n, inc1.report(), incn.report(), "update x1 vs xN");
            assert_eq!(inc1.stats(), incn.stats(), "thread count changed the retimed set");
        }

        let speedup = scalar_best / lev1_best;
        println!(
            "{:<10} {:>7}  {:>11.3} {:>13.3} {:>13.3}  {:>7.2}x {:>7}  {:>11.3} {:>11.3}",
            name,
            network.live_gate_count(),
            scalar_best * 1e3,
            lev1_best * 1e3,
            levn_best * 1e3,
            speedup,
            stats.dedup_reused,
            upd1_s * 1e3,
            updn_s * 1e3,
        );

        // Smoke gate: on the largest design the levelized sweep must not be
        // slower than the scalar reference (1.5x margin for machine noise).
        if args.smoke && i == 0 && lev1_best > scalar_best * 1.5 {
            eprintln!(
                "SMOKE FAIL: levelized full sweep ({:.3} ms) slower than 1.5x scalar ({:.3} ms) on {name}",
                lev1_best * 1e3,
                scalar_best * 1e3
            );
            smoke_ok = false;
        }
    }

    if args.smoke {
        if smoke_ok {
            println!(
                "smoke: OK (levelized <= 1.5x scalar on the largest design, all bit-identical)"
            );
        } else {
            std::process::exit(1);
        }
    }
}
