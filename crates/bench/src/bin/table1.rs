//! Regenerates Table 1 of the paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p rapids-bench --release --bin table1              # full 19-benchmark suite
//! cargo run -p rapids-bench --release --bin table1 -- --fast    # reduced effort
//! cargo run -p rapids-bench --release --bin table1 -- alu2 c432 # selected benchmarks
//! cargo run -p rapids-bench --release --bin table1 -- --json out.json
//! ```

use std::io::Write as _;

use rapids_bench::table1::{all_names, format_table, results_to_json, run_benchmark, FlowConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = FlowConfig::default();
    let mut json_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => config = FlowConfig::fast(),
            "--json" => {
                json_path = iter.next();
                if json_path.is_none() {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }
    let selected: Vec<&str> =
        if names.is_empty() { all_names() } else { names.iter().map(|s| s.as_str()).collect() };

    println!("RAPIDS reproduction — Table 1 (fast={})", config.placer.moves_per_gate < 20);
    println!(
        "columns: circuit, gates, initial delay (ns), delay improvement %% of gsg / GS / gsg+GS,"
    );
    println!(
        "         CPU s of gsg / GS / gsg+GS, area %% of GS / gsg+GS, coverage %%, L, redundancies"
    );
    println!();

    let mut results = Vec::new();
    for name in &selected {
        eprint!("running {name} ... ");
        let _ = std::io::stderr().flush();
        match run_benchmark(name, &config) {
            Some(result) => {
                eprintln!(
                    "done (init {:.2} ns, gsg {:.1}%, GS {:.1}%, gsg+GS {:.1}%)",
                    result.initial_delay_ns,
                    result.gsg_percent,
                    result.gs_percent,
                    result.combined_percent
                );
                results.push(result);
            }
            None => eprintln!("unknown benchmark, skipped"),
        }
    }

    println!("{}", format_table(&results));

    if let Some(path) = json_path {
        std::fs::write(&path, results_to_json(&results)).expect("write JSON report");
        println!("JSON report written to {path}");
    }
}
