//! Regenerates Table 1 of the paper and serves as the perf harness.
//!
//! Usage:
//!
//! ```text
//! cargo run -p rapids-bench --release --bin table1              # full 19-benchmark suite
//! cargo run -p rapids-bench --release --bin table1 -- --fast    # reduced effort
//! cargo run -p rapids-bench --release --bin table1 -- alu2 c432 # selected benchmarks
//! cargo run -p rapids-bench --release --bin table1 -- --json out.json
//! cargo run -p rapids-bench --release --bin table1 -- --threads 8       # thread-per-design
//! cargo run -p rapids-bench --release --bin table1 -- --bench-out BENCH_pr2.json \
//!     --baseline ci/baseline_pr1.json    # perf report, baseline embedded
//! cargo run -p rapids-bench --release --bin table1 -- --qor-out expected.json
//! cargo run -p rapids-bench --release --bin table1 -- --check expected.json  # CI regression
//! cargo run -p rapids-bench --release --bin table1 -- --es     # allow inverting (ES) swaps
//! cargo run -p rapids-bench --release --bin table1 -- --legalize # row-legal placements
//! cargo run -p rapids-bench --release --bin table1 -- --blif-dir designs/  # real netlists
//! cargo run -p rapids-bench --release --bin table1 -- --trace-out trace.json # Chrome trace
//! ```

use std::io::Write as _;

use rapids_bench::table1::{
    all_names, bench_report, format_table, results_to_json, results_to_qor_json, run_blif_dir,
    run_suite_threaded, FlowConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = FlowConfig::default();
    let mut json_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut qor_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut threads = 1usize;
    let mut include_inverting = false;
    let mut legalize = false;
    let mut blif_dirs: Vec<String> = Vec::new();
    let mut trace_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    let path_arg = |iter: &mut std::vec::IntoIter<String>, flag: &str| -> String {
        iter.next().unwrap_or_else(|| {
            eprintln!("{flag} requires a file path");
            std::process::exit(2);
        })
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--fast" => config = FlowConfig::fast(),
            "--es" => include_inverting = true,
            "--legalize" => legalize = true,
            "--json" => json_path = Some(path_arg(&mut iter, "--json")),
            "--bench-out" => bench_path = Some(path_arg(&mut iter, "--bench-out")),
            "--baseline" => baseline_path = Some(path_arg(&mut iter, "--baseline")),
            "--qor-out" => qor_path = Some(path_arg(&mut iter, "--qor-out")),
            "--check" => check_path = Some(path_arg(&mut iter, "--check")),
            "--blif-dir" => blif_dirs.push(path_arg(&mut iter, "--blif-dir")),
            "--trace-out" => trace_path = Some(path_arg(&mut iter, "--trace-out")),
            "--threads" => {
                let value = path_arg(&mut iter, "--threads");
                threads = value.parse().unwrap_or_else(|_| {
                    eprintln!("--threads requires a positive integer, got `{value}`");
                    std::process::exit(2);
                });
                threads = threads.max(1);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
            name => names.push(name.to_string()),
        }
    }
    // Span recording is opt-in: without the sink installed every span in
    // the flow is a no-op.
    if trace_path.is_some() {
        rapids_obs::trace::install();
    }
    // Applied after parsing so `--es --fast` and `--fast --es` agree.
    config.optimizer.include_inverting_swaps = include_inverting;
    config.legalize.enabled = legalize;
    // `--blif-dir` without names runs only the discovered netlists; the
    // full synthetic suite stays the default otherwise.
    let selected: Vec<&str> = if names.is_empty() {
        if blif_dirs.is_empty() {
            all_names()
        } else {
            Vec::new()
        }
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };

    println!(
        "RAPIDS reproduction — Table 1 (fast={}, threads={threads}, es={include_inverting}, \
         legalize={legalize})",
        is_fast(&config)
    );
    println!(
        "columns: circuit, gates, initial delay (ns), delay improvement %% of gsg / GS / gsg+GS,"
    );
    println!(
        "         CPU s of gsg / GS / gsg+GS, area %% of GS / gsg+GS, coverage %%, L, redundancies"
    );
    println!();

    for name in &selected {
        eprintln!("queued {name}");
    }
    let _ = std::io::stderr().flush();
    let mut results = run_suite_threaded(&selected, &config, threads);
    if results.len() != selected.len() {
        eprintln!("note: {} unknown benchmark(s) skipped", selected.len() - results.len());
    }
    // Discovered `.blif` rows ride the same table/JSON/QoR plumbing as the
    // synthetic suite, appended in discovery order.
    for dir in &blif_dirs {
        results.extend(run_blif_dir(std::path::Path::new(dir), &config, threads));
    }

    println!("{}", format_table(&results));

    if let Some(path) = json_path {
        std::fs::write(&path, results_to_json(&results)).expect("write JSON report");
        println!("JSON report written to {path}");
    }
    if let Some(path) = bench_path {
        let baseline = baseline_path.map(|p| {
            std::fs::read_to_string(&p)
                .unwrap_or_else(|e| panic!("read baseline document {p}: {e}"))
        });
        let report = bench_report(&results, threads, baseline.as_deref());
        std::fs::write(&path, report).expect("write bench report");
        println!("perf report written to {path}");
    }
    if let Some(path) = qor_path {
        std::fs::write(&path, results_to_qor_json(&results)).expect("write QoR report");
        println!("QoR report written to {path}");
    }
    if let Some(path) = trace_path {
        rapids_obs::trace::write_chrome_trace(std::path::Path::new(&path))
            .unwrap_or_else(|e| panic!("write trace {path}: {e}"));
        println!("Chrome trace written to {path}");
    }
    if let Some(path) = check_path {
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read expected QoR report {path}: {e}"));
        let actual = results_to_qor_json(&results);
        if expected.trim() == actual.trim() {
            println!("QoR check against {path}: OK");
        } else {
            eprintln!("QoR regression: report differs from {path}");
            eprintln!("--- expected ---\n{}", expected.trim());
            eprintln!("--- actual ---\n{}", actual.trim());
            std::process::exit(1);
        }
    }
}

fn is_fast(config: &FlowConfig) -> bool {
    config.placer.moves_per_gate < 20
}
