//! The full evaluation flow for one benchmark and for the whole suite
//! (Table 1 of the paper).

use serde::Serialize;

use rapids_celllib::Library;
use rapids_circuits::{benchmark, suite_names};
use rapids_core::{
    BenchmarkRow, OptimizationOutcome, Optimizer, OptimizerConfig, OptimizerKind,
};
use rapids_placement::{place, PlacerConfig};
use rapids_timing::{Sta, TimingConfig};

/// Effort configuration of the evaluation flow.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Placer configuration.
    pub placer: PlacerConfig,
    /// Timing model configuration.
    pub timing: TimingConfig,
    /// Optimizer passes etc. (the `kind` field is overridden per run).
    pub optimizer: OptimizerConfig,
    /// Placement seed (kept fixed so the three optimizers see the same
    /// placement, as in the paper).
    pub seed: u64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            // Pad-limited die (low row utilization): wire lengths reach the
            // millimetre range, so interconnect is a first-order term of the
            // critical path — the regime the paper's experiments target.
            placer: PlacerConfig { utilization: 0.15, ..PlacerConfig::default() },
            timing: TimingConfig::default(),
            optimizer: OptimizerConfig::default(),
            seed: 2000,
        }
    }
}

impl FlowConfig {
    /// Reduced-effort configuration (used by tests and smoke benches).
    pub fn fast() -> Self {
        FlowConfig {
            placer: PlacerConfig::fast(),
            optimizer: OptimizerConfig::fast(OptimizerKind::Combined),
            ..Self::default()
        }
    }
}

/// Result of running the three optimizers on one benchmark.
#[derive(Debug, Clone, Serialize)]
pub struct FlowResult {
    /// Benchmark name.
    pub name: String,
    /// Mapped gate count.
    pub gate_count: usize,
    /// Initial (post-placement) critical delay, ns.
    pub initial_delay_ns: f64,
    /// gsg delay improvement, %.
    pub gsg_percent: f64,
    /// GS delay improvement, %.
    pub gs_percent: f64,
    /// gsg+GS delay improvement, %.
    pub combined_percent: f64,
    /// CPU seconds for each optimizer.
    pub gsg_cpu_s: f64,
    /// CPU seconds for GS.
    pub gs_cpu_s: f64,
    /// CPU seconds for gsg+GS.
    pub combined_cpu_s: f64,
    /// GS area change, %.
    pub gs_area_percent: f64,
    /// gsg+GS area change, %.
    pub combined_area_percent: f64,
    /// Supergate coverage, %.
    pub coverage_percent: f64,
    /// Largest supergate input count.
    pub largest_inputs: usize,
    /// Redundancies found during extraction.
    pub redundancy_count: usize,
    /// Number of swaps applied by gsg.
    pub gsg_swaps: usize,
    /// Wire-length change of gsg, %.
    pub gsg_hpwl_percent: f64,
}

impl FlowResult {
    /// Converts into the Table 1 row structure.
    pub fn to_row(&self) -> BenchmarkRow {
        BenchmarkRow {
            name: self.name.clone(),
            gate_count: self.gate_count,
            initial_delay_ns: self.initial_delay_ns,
            gsg_improvement_percent: self.gsg_percent,
            gs_improvement_percent: self.gs_percent,
            combined_improvement_percent: self.combined_percent,
            gsg_cpu_s: self.gsg_cpu_s,
            gs_cpu_s: self.gs_cpu_s,
            combined_cpu_s: self.combined_cpu_s,
            gs_area_percent: self.gs_area_percent,
            combined_area_percent: self.combined_area_percent,
            coverage_percent: self.coverage_percent,
            largest_inputs: self.largest_inputs,
            redundancy_count: self.redundancy_count,
        }
    }
}

/// Runs the full flow (generate, map, place, time, optimize three ways) for
/// one named benchmark.
///
/// Returns `None` for an unknown benchmark name.
pub fn run_benchmark(name: &str, config: &FlowConfig) -> Option<FlowResult> {
    let network = benchmark(name)?;
    let library = Library::standard_035um();
    let placement = place(&network, &library, &config.placer, config.seed);
    let initial = Sta::analyze(&network, &library, &placement, &config.timing);
    let initial_delay_ns = initial.critical_delay_ns();

    let run = |kind: OptimizerKind| -> OptimizationOutcome {
        let mut working = network.clone();
        let optimizer_config = OptimizerConfig { kind, ..config.optimizer.clone() };
        Optimizer::new(optimizer_config).optimize(&mut working, &library, &placement, &config.timing)
    };
    let gsg = run(OptimizerKind::Rewiring);
    let gs = run(OptimizerKind::Sizing);
    let combined = run(OptimizerKind::Combined);

    Some(FlowResult {
        name: name.to_string(),
        gate_count: network.logic_gate_count(),
        initial_delay_ns,
        gsg_percent: gsg.delay_improvement_percent(),
        gs_percent: gs.delay_improvement_percent(),
        combined_percent: combined.delay_improvement_percent(),
        gsg_cpu_s: gsg.cpu_seconds,
        gs_cpu_s: gs.cpu_seconds,
        combined_cpu_s: combined.cpu_seconds,
        gs_area_percent: gs.area_change_percent(),
        combined_area_percent: combined.area_change_percent(),
        coverage_percent: gsg.statistics.coverage_percent(),
        largest_inputs: gsg.statistics.largest_inputs,
        redundancy_count: gsg.statistics.redundancy_count,
        gsg_swaps: gsg.swaps_applied,
        gsg_hpwl_percent: gsg.hpwl_change_percent(),
    })
}

/// Runs the flow over a list of benchmark names (use
/// [`rapids_circuits::suite_names`] for the full Table 1).
pub fn run_suite(names: &[&str], config: &FlowConfig) -> Vec<FlowResult> {
    names
        .iter()
        .filter_map(|name| run_benchmark(name, config))
        .collect()
}

/// Formats a set of flow results as the paper-style table, including the
/// average row.
pub fn format_table(results: &[FlowResult]) -> String {
    let mut out = String::new();
    out.push_str(&BenchmarkRow::table_header());
    out.push('\n');
    let rows: Vec<BenchmarkRow> = results.iter().map(FlowResult::to_row).collect();
    for row in &rows {
        out.push_str(&row.to_table_line());
        out.push('\n');
    }
    out.push_str(&BenchmarkRow::average(&rows).to_table_line());
    out.push('\n');
    out
}

/// Convenience: every Table 1 benchmark name.
pub fn all_names() -> Vec<&'static str> {
    suite_names()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_benchmark_flow_produces_sane_numbers() {
        let result = run_benchmark("c432", &FlowConfig::fast()).unwrap();
        assert!(result.initial_delay_ns > 0.0);
        assert!(result.gsg_percent >= 0.0);
        assert!(result.gs_percent >= 0.0);
        assert!(result.combined_percent >= 0.0);
        assert!(result.coverage_percent > 0.0 && result.coverage_percent <= 100.0);
        assert!(result.largest_inputs >= 2);
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(run_benchmark("nope", &FlowConfig::fast()).is_none());
    }

    #[test]
    fn table_formatting_includes_average_row() {
        let results = run_suite(&["c432"], &FlowConfig::fast());
        let table = format_table(&results);
        assert!(table.contains("c432"));
        assert!(table.contains("ave."));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn all_names_matches_suite() {
        assert_eq!(all_names().len(), 19);
    }
}
