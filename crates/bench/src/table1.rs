//! The full evaluation flow for one benchmark and for the whole suite
//! (Table 1 of the paper), layered on the workspace-wide
//! [`rapids_flow::Pipeline`], plus the perf-trajectory harness behind
//! `table1 --bench-out` / `--threads` / `--qor-out` / `--check`.

use rapids_circuits::suite_names;
use rapids_core::BenchmarkRow;
use rapids_flow::{CircuitSource, FlowComparison, Pipeline, PipelineError, PipelineReport};

/// Effort configuration of the evaluation flow.
///
/// The harness shares the pipeline's configuration type: the `placer`,
/// `timing`, `optimizer` and `seed` fields drive the same stages here and
/// everywhere else the flow runs.
pub use rapids_flow::PipelineConfig as FlowConfig;

/// Wall-clock and QoR metrics of one optimizer on one benchmark.
#[derive(Debug, Clone)]
pub struct OptimizerMetrics {
    /// Wall-clock seconds of the optimizer run.
    pub cpu_s: f64,
    /// Critical-path delay after optimization, ns.
    pub final_delay_ns: f64,
    /// Total cell area after optimization, µm².
    pub final_area_um2: f64,
    /// Pin swaps applied.
    pub swaps: usize,
    /// Inverting (ES) swaps among `swaps`; each inserted one inverter pair.
    pub es_swaps: usize,
    /// Gates resized.
    pub resized: usize,
    /// Full STA re-analyses the run's timing engine(s) performed.
    pub sta_full_retimes: usize,
    /// Dirty-cone incremental STA updates.
    pub sta_update_retimes: usize,
    /// Total gates re-timed by those incremental updates.
    pub gates_retimed: usize,
}

impl OptimizerMetrics {
    fn from_report(report: &PipelineReport) -> Self {
        OptimizerMetrics {
            cpu_s: report.outcome.cpu_seconds,
            final_delay_ns: report.outcome.final_delay_ns,
            final_area_um2: report.outcome.final_area_um2,
            swaps: report.outcome.swaps_applied,
            es_swaps: report.outcome.inverting_swaps_applied,
            resized: report.outcome.gates_resized,
            sta_full_retimes: report.outcome.sta.full_refreshes,
            sta_update_retimes: report.outcome.sta.incremental_updates,
            gates_retimed: report.outcome.sta.gates_retimed,
        }
    }

    fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"cpu_s\":{},\"final_delay_ns\":{},\"final_area_um2\":{},",
                "\"swaps\":{},\"es_swaps\":{},\"resized\":{},",
                "\"sta_full_retimes\":{},\"sta_update_retimes\":{},",
                "\"gates_retimed\":{}}}"
            ),
            json_number(self.cpu_s),
            json_number(self.final_delay_ns),
            json_number(self.final_area_um2),
            self.swaps,
            self.es_swaps,
            self.resized,
            self.sta_full_retimes,
            self.sta_update_retimes,
            self.gates_retimed,
        )
    }
}

/// Result of running the three optimizers on one benchmark.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Benchmark name.
    pub name: String,
    /// Mapped gate count.
    pub gate_count: usize,
    /// Initial (post-placement) critical delay, ns.
    pub initial_delay_ns: f64,
    /// Initial cell area, µm².
    pub initial_area_um2: f64,
    /// gsg delay improvement, %.
    pub gsg_percent: f64,
    /// GS delay improvement, %.
    pub gs_percent: f64,
    /// gsg+GS delay improvement, %.
    pub combined_percent: f64,
    /// CPU seconds for each optimizer.
    pub gsg_cpu_s: f64,
    /// CPU seconds for GS.
    pub gs_cpu_s: f64,
    /// CPU seconds for gsg+GS.
    pub combined_cpu_s: f64,
    /// GS area change, %.
    pub gs_area_percent: f64,
    /// gsg+GS area change, %.
    pub combined_area_percent: f64,
    /// Supergate coverage, %.
    pub coverage_percent: f64,
    /// Largest supergate input count.
    pub largest_inputs: usize,
    /// Redundancies found during extraction.
    pub redundancy_count: usize,
    /// Number of swaps applied by gsg.
    pub gsg_swaps: usize,
    /// Wire-length change of gsg, %.
    pub gsg_hpwl_percent: f64,
    /// Whether the pipeline's legalize stage ran on this design.
    pub legalized: bool,
    /// Total HPWL of the shared pre-optimization placement, µm — after
    /// legalization + refinement when the stage ran, the raw annealed
    /// value otherwise.
    pub hpwl_um: f64,
    /// Largest single-gate displacement the full legalizer applied, µm
    /// (0 while the stage is disabled).
    pub max_displacement_um: f64,
    /// Full per-optimizer wall-clock + QoR metrics (the perf-harness view).
    pub gsg: OptimizerMetrics,
    /// GS metrics.
    pub gs: OptimizerMetrics,
    /// gsg+GS metrics.
    pub combined: OptimizerMetrics,
}

impl FlowResult {
    /// Collapses a pipeline three-way comparison into the Table 1 shape.
    pub fn from_comparison(comparison: &FlowComparison) -> Self {
        let gsg = &comparison.rewiring.outcome;
        let gs = &comparison.sizing.outcome;
        let combined = &comparison.combined.outcome;
        FlowResult {
            name: comparison.name.clone(),
            gate_count: comparison.gate_count,
            initial_delay_ns: comparison.initial_delay_ns,
            initial_area_um2: gsg.initial_area_um2,
            gsg_percent: gsg.delay_improvement_percent(),
            gs_percent: gs.delay_improvement_percent(),
            combined_percent: combined.delay_improvement_percent(),
            gsg_cpu_s: gsg.cpu_seconds,
            gs_cpu_s: gs.cpu_seconds,
            combined_cpu_s: combined.cpu_seconds,
            gs_area_percent: gs.area_change_percent(),
            combined_area_percent: combined.area_change_percent(),
            coverage_percent: gsg.statistics.coverage_percent(),
            largest_inputs: gsg.statistics.largest_inputs,
            redundancy_count: gsg.statistics.redundancy_count,
            gsg_swaps: gsg.swaps_applied,
            gsg_hpwl_percent: gsg.hpwl_change_percent(),
            legalized: comparison.legalization.is_some(),
            hpwl_um: comparison
                .legalization
                .map_or(gsg.initial_hpwl_um, |legalization| legalization.hpwl_um),
            max_displacement_um: comparison
                .legalization
                .map_or(0.0, |legalization| legalization.max_displacement_um()),
            gsg: OptimizerMetrics::from_report(&comparison.rewiring),
            gs: OptimizerMetrics::from_report(&comparison.sizing),
            combined: OptimizerMetrics::from_report(&comparison.combined),
        }
    }

    /// Converts into the Table 1 row structure.
    pub fn to_row(&self) -> BenchmarkRow {
        BenchmarkRow {
            name: self.name.clone(),
            gate_count: self.gate_count,
            initial_delay_ns: self.initial_delay_ns,
            gsg_improvement_percent: self.gsg_percent,
            gs_improvement_percent: self.gs_percent,
            combined_improvement_percent: self.combined_percent,
            gsg_cpu_s: self.gsg_cpu_s,
            gs_cpu_s: self.gs_cpu_s,
            combined_cpu_s: self.combined_cpu_s,
            gs_area_percent: self.gs_area_percent,
            combined_area_percent: self.combined_area_percent,
            coverage_percent: self.coverage_percent,
            largest_inputs: self.largest_inputs,
            redundancy_count: self.redundancy_count,
        }
    }

    /// Serializes the result as a JSON object.
    ///
    /// Hand-rolled because the build container has no registry access for
    /// `serde`/`serde_json` (see `vendor/README.md`); the field set is small
    /// and flat, and every name is a plain identifier.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"gate_count\":{},\"initial_delay_ns\":{},",
                "\"gsg_percent\":{},\"gs_percent\":{},\"combined_percent\":{},",
                "\"gsg_cpu_s\":{},\"gs_cpu_s\":{},\"combined_cpu_s\":{},",
                "\"gs_area_percent\":{},\"combined_area_percent\":{},",
                "\"coverage_percent\":{},\"largest_inputs\":{},",
                "\"redundancy_count\":{},\"gsg_swaps\":{},\"gsg_hpwl_percent\":{},",
                "\"legalized\":{},\"hpwl_um\":{},\"max_displacement_um\":{}}}"
            ),
            json_string(&self.name),
            self.gate_count,
            json_number(self.initial_delay_ns),
            json_number(self.gsg_percent),
            json_number(self.gs_percent),
            json_number(self.combined_percent),
            json_number(self.gsg_cpu_s),
            json_number(self.gs_cpu_s),
            json_number(self.combined_cpu_s),
            json_number(self.gs_area_percent),
            json_number(self.combined_area_percent),
            json_number(self.coverage_percent),
            self.largest_inputs,
            self.redundancy_count,
            self.gsg_swaps,
            json_number(self.gsg_hpwl_percent),
            self.legalized,
            json_number(self.hpwl_um),
            json_number(self.max_displacement_um),
        )
    }

    /// The perf-harness JSON record: per-optimizer wall-clock plus absolute
    /// delay/area QoR, nested per optimizer.
    pub fn to_bench_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"gate_count\":{},\"initial_delay_ns\":{},",
                "\"initial_area_um2\":{},\"gsg\":{},\"gs\":{},\"combined\":{}}}"
            ),
            json_string(&self.name),
            self.gate_count,
            json_number(self.initial_delay_ns),
            json_number(self.initial_area_um2),
            self.gsg.to_json(),
            self.gs.to_json(),
            self.combined.to_json(),
        )
    }

    /// Deterministic QoR-only record: wall-clock fields are excluded so the
    /// output is exactly reproducible run over run (the CI regression step
    /// diffs it as a string).
    pub fn to_qor_json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":{},\"gate_count\":{},\"initial_delay_ns\":{},",
                "\"gsg_final_delay_ns\":{},\"gs_final_delay_ns\":{},",
                "\"combined_final_delay_ns\":{},\"gs_final_area_um2\":{},",
                "\"combined_final_area_um2\":{},\"gsg_swaps\":{},",
                "\"gsg_es_swaps\":{},\"combined_es_swaps\":{},\"gs_resized\":{},",
                "\"legalized\":{},\"hpwl_um\":{},\"max_displacement_um\":{}}}"
            ),
            json_string(&self.name),
            self.gate_count,
            json_number(self.initial_delay_ns),
            json_number(self.gsg.final_delay_ns),
            json_number(self.gs.final_delay_ns),
            json_number(self.combined.final_delay_ns),
            json_number(self.gs.final_area_um2),
            json_number(self.combined.final_area_um2),
            self.gsg.swaps,
            self.gsg.es_swaps,
            self.combined.es_swaps,
            self.gs.resized,
            self.legalized,
            json_number(self.hpwl_um),
            json_number(self.max_displacement_um),
        )
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_number(x: f64) -> String {
    // JSON has no NaN/Infinity; clamp to null like serde_json's lossy mode.
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Serializes a slice of results as a pretty-printed JSON array.
pub fn results_to_json(results: &[FlowResult]) -> String {
    json_array(results, FlowResult::to_json)
}

/// Serializes the perf-harness view (see [`FlowResult::to_bench_json`]).
pub fn results_to_bench_json(results: &[FlowResult]) -> String {
    json_array(results, FlowResult::to_bench_json)
}

/// Serializes the deterministic QoR-only view
/// (see [`FlowResult::to_qor_json`]).
pub fn results_to_qor_json(results: &[FlowResult]) -> String {
    json_array(results, FlowResult::to_qor_json)
}

fn json_array(results: &[FlowResult], f: impl Fn(&FlowResult) -> String) -> String {
    let mut out = String::from("[\n");
    for (i, result) in results.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&f(result));
        if i + 1 != results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Wraps the perf-harness rows in a report envelope, optionally embedding a
/// previously captured baseline document verbatim for side-by-side speedup
/// analysis.
pub fn bench_report(results: &[FlowResult], threads: usize, baseline_json: Option<&str>) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("\"threads\":{threads},\n"));
    if let Some(baseline) = baseline_json {
        out.push_str("\"baseline\":");
        out.push_str(baseline.trim());
        out.push_str(",\n");
    }
    out.push_str("\"rows\":");
    out.push_str(&results_to_bench_json(results));
    out.push_str("\n}");
    out
}

/// Runs the full flow (generate, map, place, time, optimize three ways) for
/// one named benchmark through the [`Pipeline`].
///
/// Returns `None` for an unknown benchmark name.
pub fn run_benchmark(name: &str, config: &FlowConfig) -> Option<FlowResult> {
    let pipeline = Pipeline::new(config.clone());
    match pipeline.compare_optimizers(CircuitSource::suite(name)) {
        Ok(comparison) => Some(FlowResult::from_comparison(&comparison)),
        Err(PipelineError::UnknownBenchmark(_)) => None,
        // Any other failure (mapping error, broken equivalence) is a bug in
        // the flow itself, not a caller mistake — surface it loudly.
        Err(e) => panic!("flow failed on `{name}`: {e}"),
    }
}

/// Runs the full flow for one `.blif` file through the [`Pipeline`]
/// (parse → map → place → time → optimize three ways); the row is named
/// after the file's model.  This is the per-design engine behind
/// `table1 --blif-dir`.
///
/// # Errors
///
/// Unreadable or unparsable files surface as [`PipelineError`] instead of
/// panicking — a benchmark directory may legitimately contain bad files.
pub fn run_blif_benchmark(
    path: &std::path::Path,
    config: &FlowConfig,
) -> Result<FlowResult, PipelineError> {
    let pipeline = Pipeline::new(config.clone());
    let source =
        CircuitSource::BlifFile { path: path.to_path_buf(), max_fanin: config.map_max_fanin };
    Ok(FlowResult::from_comparison(&pipeline.compare_optimizers(source)?))
}

/// Runs every `.blif` file discovered under `dir` (recursively, in the
/// deterministic order of [`rapids_netlist::blif::discover_files`] — the
/// same loader the serve layer ingests with) with thread-per-design
/// sharding.  Unreadable or unparsable files are skipped with a note on
/// stderr; rows come back in discovery order.
pub fn run_blif_dir(dir: &std::path::Path, config: &FlowConfig, threads: usize) -> Vec<FlowResult> {
    let files = match rapids_netlist::blif::discover_files(dir) {
        Ok(files) => files,
        Err(e) => {
            eprintln!("cannot scan {}: {e}", dir.display());
            return Vec::new();
        }
    };
    run_threaded(&files, threads, |path| match run_blif_benchmark(path, config) {
        Ok(result) => Some(result),
        // Only input problems are the file's fault; anything else (e.g. a
        // broken-equivalence abort) is a bug in the flow itself and stays
        // loud, matching `run_benchmark`'s contract for the suite.
        Err(e @ PipelineError::Netlist(_)) => {
            eprintln!("skipping {}: {e}", path.display());
            None
        }
        Err(e) => panic!("flow failed on `{}`: {e}", path.display()),
    })
}

/// Runs the flow over a list of benchmark names (use
/// [`rapids_circuits::suite_names`] for the full Table 1).
pub fn run_suite(names: &[&str], config: &FlowConfig) -> Vec<FlowResult> {
    names.iter().filter_map(|name| run_benchmark(name, config)).collect()
}

/// Runs the flow over a list of benchmark names with thread-per-design
/// sharding: up to `threads` designs execute concurrently, and the results
/// come back in input order regardless of completion order, so any thread
/// count produces an identical report.
pub fn run_suite_threaded(names: &[&str], config: &FlowConfig, threads: usize) -> Vec<FlowResult> {
    run_threaded(names, threads, |name| run_benchmark(name, config))
}

/// Thread-per-design sharding over any item list: up to `threads` items
/// execute concurrently, items whose runner returns `None` are dropped,
/// and results come back in input order regardless of completion order —
/// so any thread count produces an identical report.
fn run_threaded<T: Sync>(
    items: &[T],
    threads: usize,
    run: impl Fn(&T) -> Option<FlowResult> + Sync,
) -> Vec<FlowResult> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().filter_map(&run).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<FlowResult>>> =
        (0..items.len()).map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(items.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = run(&items[i]);
                *slots[i].lock().expect("slot lock poisoned") = result;
            });
        }
    });
    slots.into_iter().filter_map(|m| m.into_inner().expect("slot lock poisoned")).collect()
}

/// Formats a set of flow results as the paper-style table, including the
/// average row.
pub fn format_table(results: &[FlowResult]) -> String {
    let mut out = String::new();
    out.push_str(&BenchmarkRow::table_header());
    out.push('\n');
    let rows: Vec<BenchmarkRow> = results.iter().map(FlowResult::to_row).collect();
    for row in &rows {
        out.push_str(&row.to_table_line());
        out.push('\n');
    }
    out.push_str(&BenchmarkRow::average(&rows).to_table_line());
    out.push('\n');
    out
}

/// Convenience: every Table 1 benchmark name.
pub fn all_names() -> Vec<&'static str> {
    suite_names()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_benchmark_flow_produces_sane_numbers() {
        let result = run_benchmark("c432", &FlowConfig::fast()).unwrap();
        assert!(result.initial_delay_ns > 0.0);
        assert!(result.gsg_percent >= 0.0);
        assert!(result.gs_percent >= 0.0);
        assert!(result.combined_percent >= 0.0);
        assert!(result.coverage_percent > 0.0 && result.coverage_percent <= 100.0);
        assert!(result.largest_inputs >= 2);
        // The perf-harness view agrees with the flat view.
        assert_eq!(result.gsg.cpu_s, result.gsg_cpu_s);
        assert_eq!(result.gsg.swaps, result.gsg_swaps);
        assert!(result.gs.final_area_um2 > 0.0);
        assert!(result.combined.final_delay_ns <= result.initial_delay_ns + 1e-9);
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(run_benchmark("nope", &FlowConfig::fast()).is_none());
    }

    #[test]
    fn blif_dir_runs_good_files_and_skips_bad_ones() {
        let dir = std::env::temp_dir().join(format!("rapids_table1_blif_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let text = "\
.model tiny_chain
.inputs a b c d
.outputs f
.gate nand n1 a b
.gate nand n2 n1 c
.gate nand f n2 d
.end
";
        std::fs::write(dir.join("tiny_chain.blif"), text).unwrap();
        std::fs::write(dir.join("broken.blif"), ".model broken\n.gate frob f a\n.end\n").unwrap();

        let config = FlowConfig::fast();
        let results = run_blif_dir(&dir, &config, 2);
        assert_eq!(results.len(), 1, "the broken file must be skipped, not fatal");
        assert_eq!(results[0].name, "tiny_chain");
        assert!(results[0].initial_delay_ns > 0.0);

        // The per-file entry point agrees with the directory sweep.
        let single = run_blif_benchmark(&dir.join("tiny_chain.blif"), &config).unwrap();
        assert_eq!(results_to_qor_json(&results), results_to_qor_json(&[single]));
        assert!(run_blif_benchmark(&dir.join("broken.blif"), &config).is_err());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_formatting_includes_average_row() {
        let results = run_suite(&["c432"], &FlowConfig::fast());
        let table = format_table(&results);
        assert!(table.contains("c432"));
        assert!(table.contains("ave."));
        assert_eq!(table.lines().count(), 3);
    }

    #[test]
    fn all_names_matches_suite() {
        assert_eq!(all_names().len(), 19);
    }

    #[test]
    fn json_report_is_well_formed() {
        let results = run_suite(&["c432"], &FlowConfig::fast());
        let json = results_to_json(&results);
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"c432\""));
        assert!(json.contains("\"gsg_percent\":"));
        // Balanced braces: one object per result.
        assert_eq!(json.matches('{').count(), results.len());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn bench_report_embeds_baseline_and_rows() {
        let results = run_suite(&["c432"], &FlowConfig::fast());
        let report = bench_report(&results, 2, Some("{\"rows\":[]}"));
        assert!(report.starts_with('{') && report.ends_with('}'));
        assert!(report.contains("\"threads\":2"));
        assert!(report.contains("\"baseline\":{\"rows\":[]}"));
        assert!(report.contains("\"final_delay_ns\""));
        assert!(report.contains("\"cpu_s\""));
        assert_eq!(report.matches('{').count(), report.matches('}').count());
    }

    #[test]
    fn threaded_suite_reports_are_identical_to_sequential() {
        let config = FlowConfig::fast();
        let names = ["c432", "alu2"];
        let sequential = run_suite(&names, &config);
        let threaded = run_suite_threaded(&names, &config, 4);
        // Wall-clock fields differ run to run; the QoR view must not.
        assert_eq!(results_to_qor_json(&sequential), results_to_qor_json(&threaded));
    }

    #[test]
    fn qor_json_is_reproducible() {
        let config = FlowConfig::fast();
        let a = results_to_qor_json(&run_suite(&["c432"], &config));
        let b = results_to_qor_json(&run_suite(&["c432"], &config));
        assert_eq!(a, b, "QoR report must be deterministic run over run");
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(super::json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(super::json_number(f64::NAN), "null");
    }
}
