//! # rapids-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§6), plus ablation studies.
//!
//! * The [`table1`] module runs the full flow — generate → map → place →
//!   time → optimize with `gsg`, `GS` and `gsg+GS` — for any subset of the
//!   19-benchmark suite and assembles [`rapids_core::BenchmarkRow`]s.
//!   The `table1` binary prints the reproduced Table 1 (and a JSON report).
//! * The Criterion benches under `benches/` measure the individual claims:
//!   linear-time supergate extraction, extraction coverage, redundancy
//!   scanning, STA cost, and parameter ablations.

pub mod table1;

pub use table1::{run_benchmark, run_suite, FlowConfig, FlowResult};
