//! Simulation signatures: per-gate random-pattern response vectors.
//!
//! A signature is a necessary-condition fingerprint: if two candidate pins
//! were truly swappable, swapping them must leave every primary-output
//! signature unchanged.  The test-suite uses signatures to cross-check the
//! structural symmetry detector on generated circuits where BDDs would be
//! too large.

use rapids_netlist::{GateId, Network};

use crate::simulator::Simulator;
use crate::vectors::{random_words, PatternSet};

/// Signatures of every gate of a network under a fixed random pattern set.
#[derive(Debug, Clone)]
pub struct SignatureTable {
    patterns: PatternSet,
    table: Vec<Vec<u64>>,
}

impl SignatureTable {
    /// Simulates `pattern_count` random patterns (seeded) and records every
    /// gate's response.
    pub fn new(network: &Network, pattern_count: usize, seed: u64) -> Self {
        let patterns = random_words(network.inputs().len(), pattern_count, seed);
        let sim = Simulator::new(network);
        let table = sim.simulate_patterns(network, &patterns);
        SignatureTable { patterns, table }
    }

    /// The signature words of a gate.
    pub fn signature(&self, gate: GateId) -> &[u64] {
        &self.table[gate.index()]
    }

    /// Returns `true` if two gates have identical signatures (necessary for
    /// functional equivalence of the two signals).
    pub fn same_signature(&self, a: GateId, b: GateId) -> bool {
        self.table[a.index()] == self.table[b.index()]
    }

    /// Returns `true` if gate `a`'s signature is the bitwise complement of
    /// gate `b`'s (necessary for the two signals being inverses).
    pub fn complementary_signature(&self, a: GateId, b: GateId) -> bool {
        self.table[a.index()].iter().zip(&self.table[b.index()]).all(|(&wa, &wb)| wa == !wb)
    }

    /// The pattern set the table was built from (useful for re-checks after
    /// an edit, so both sides see identical stimuli).
    pub fn patterns(&self) -> &PatternSet {
        &self.patterns
    }

    /// Re-simulates the (possibly edited) network on the stored pattern set
    /// and returns the primary-output signatures.
    pub fn output_signatures(&self, network: &Network) -> Vec<Vec<u64>> {
        let sim = Simulator::new(network);
        let table = sim.simulate_patterns(network, &self.patterns);
        network.outputs().iter().map(|o| table[o.driver.index()].clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder, PinRef};

    fn net() -> Network {
        let mut b = NetworkBuilder::new("sig");
        b.inputs(["a", "b", "c", "d"]);
        b.gate("and1", GateType::And, &["a", "b"]);
        b.gate("and2", GateType::And, &["b", "a"]);
        b.gate("n1", GateType::Nand, &["a", "b"]);
        b.gate("x", GateType::Xor, &["c", "d"]);
        b.gate("f", GateType::Or, &["and1", "x"]);
        b.output("f");
        b.output("n1");
        b.finish().unwrap()
    }

    #[test]
    fn identical_functions_share_signature() {
        let n = net();
        let sigs = SignatureTable::new(&n, 512, 11);
        let a1 = n.find_by_name("and1").unwrap();
        let a2 = n.find_by_name("and2").unwrap();
        assert!(sigs.same_signature(a1, a2));
    }

    #[test]
    fn complementary_functions_detected() {
        let n = net();
        let sigs = SignatureTable::new(&n, 512, 11);
        let a1 = n.find_by_name("and1").unwrap();
        let n1 = n.find_by_name("n1").unwrap();
        assert!(sigs.complementary_signature(a1, n1));
        assert!(!sigs.same_signature(a1, n1));
    }

    #[test]
    fn output_signatures_stable_under_symmetric_swap() {
        let mut n = net();
        let sigs = SignatureTable::new(&n, 512, 11);
        let before = sigs.output_signatures(&n);
        let x = n.find_by_name("x").unwrap();
        n.swap_pin_drivers(PinRef::new(x, 0), PinRef::new(x, 1)).unwrap();
        let after = sigs.output_signatures(&n);
        assert_eq!(before, after);
    }

    #[test]
    fn output_signatures_change_under_bad_swap() {
        let mut n = net();
        let sigs = SignatureTable::new(&n, 512, 11);
        let before = sigs.output_signatures(&n);
        let x = n.find_by_name("x").unwrap();
        let a1 = n.find_by_name("and1").unwrap();
        n.swap_pin_drivers(PinRef::new(x, 0), PinRef::new(a1, 0)).unwrap();
        let after = sigs.output_signatures(&n);
        assert_ne!(before, after);
    }

    #[test]
    fn different_signals_differ() {
        let n = net();
        let sigs = SignatureTable::new(&n, 512, 3);
        let a1 = n.find_by_name("and1").unwrap();
        let x = n.find_by_name("x").unwrap();
        assert!(!sigs.same_signature(a1, x));
        assert!(!sigs.complementary_signature(a1, x));
    }
}
