//! The bit-parallel simulator: evaluates every gate of a network for 64
//! patterns at a time.

use rapids_netlist::{GateId, GateType, Network};

use crate::vectors::PatternSet;

/// A compiled simulation order for a network.
///
/// The simulator snapshots the topological order at construction; if the
/// network is structurally edited (gates added/removed), build a new
/// `Simulator`.  Pin swaps and type changes that keep the same gates are
/// fine because fan-ins are re-read at simulation time.
#[derive(Debug, Clone)]
pub struct Simulator {
    order: Vec<GateId>,
    slot_count: usize,
}

impl Simulator {
    /// Compiles a simulation order for `network`.
    ///
    /// # Panics
    ///
    /// Panics if the network is cyclic.
    pub fn new(network: &Network) -> Self {
        let order = rapids_netlist::topo::topological_order(network)
            .expect("cannot simulate a cyclic network");
        Simulator { order, slot_count: network.gate_count() }
    }

    /// Simulates one word (64 patterns) given one `u64` per primary input in
    /// declaration order, and returns the value word of every gate slot.
    pub fn simulate_word(&self, network: &Network, input_words: &[u64]) -> Vec<u64> {
        assert_eq!(
            input_words.len(),
            network.inputs().len(),
            "one input word per primary input required"
        );
        let mut values = vec![0u64; self.slot_count.max(network.gate_count())];
        for (i, &pi) in network.inputs().iter().enumerate() {
            values[pi.index()] = input_words[i];
        }
        let mut fanin_buffer: Vec<u64> = Vec::with_capacity(8);
        for &g in &self.order {
            let gate = network.gate(g);
            match gate.gtype {
                GateType::Input => {}
                t => {
                    fanin_buffer.clear();
                    fanin_buffer.extend(gate.fanins.iter().map(|f| values[f.index()]));
                    values[g.index()] = t.eval_word(&fanin_buffer);
                }
            }
        }
        values
    }

    /// Simulates a whole [`PatternSet`] and returns, for every gate slot, the
    /// vector of value words (`result[gate][word]`).
    pub fn simulate_patterns(&self, network: &Network, patterns: &PatternSet) -> Vec<Vec<u64>> {
        let word_count = patterns.word_count().max(1);
        let mut result = vec![vec![0u64; word_count]; network.gate_count()];
        for w in 0..word_count {
            let input_words: Vec<u64> = (0..network.inputs().len())
                .map(|i| patterns.words.get(i).map_or(0, |v| v[w]))
                .collect();
            let values = self.simulate_word(network, &input_words);
            for (slot, row) in result.iter_mut().enumerate() {
                row[w] = values[slot];
            }
        }
        result
    }

    /// Convenience single-pattern simulation with plain booleans; returns the
    /// primary-output values in declaration order.
    pub fn simulate_bools(&self, network: &Network, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        let values = self.simulate_word(network, &words);
        network.outputs().iter().map(|o| values[o.driver.index()] & 1 == 1).collect()
    }

    /// Primary-output value words extracted from a full value table produced
    /// by [`Simulator::simulate_word`].
    pub fn output_words(&self, network: &Network, values: &[u64]) -> Vec<u64> {
        network.outputs().iter().map(|o| values[o.driver.index()]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::{exhaustive_words, random_words};
    use rapids_netlist::NetworkBuilder;

    fn full_adder() -> Network {
        let mut b = NetworkBuilder::new("fa");
        b.inputs(["a", "b", "cin"]);
        b.gate("s1", GateType::Xor, &["a", "b"]);
        b.gate("sum", GateType::Xor, &["s1", "cin"]);
        b.gate("c1", GateType::And, &["a", "b"]);
        b.gate("c2", GateType::And, &["s1", "cin"]);
        b.gate("cout", GateType::Or, &["c1", "c2"]);
        b.output("sum");
        b.output("cout");
        b.finish().unwrap()
    }

    #[test]
    fn full_adder_all_patterns() {
        let n = full_adder();
        let sim = Simulator::new(&n);
        for bits in 0..8u32 {
            let a = (bits & 1) != 0;
            let b = (bits & 2) != 0;
            let c = (bits & 4) != 0;
            let out = sim.simulate_bools(&n, &[a, b, c]);
            let total = a as u32 + b as u32 + c as u32;
            assert_eq!(out[0], total % 2 == 1, "sum mismatch at {bits}");
            assert_eq!(out[1], total >= 2, "cout mismatch at {bits}");
        }
    }

    #[test]
    fn word_simulation_matches_bool_simulation() {
        let n = full_adder();
        let sim = Simulator::new(&n);
        let patterns = exhaustive_words(3);
        let table = sim.simulate_patterns(&n, &patterns);
        for pat in 0..patterns.pattern_count {
            let bits: Vec<bool> = (0..3).map(|i| patterns.bit(i, pat)).collect();
            let expect = sim.simulate_bools(&n, &bits);
            for (oi, port) in n.outputs().iter().enumerate() {
                let word = table[port.driver.index()][pat / 64];
                let got = (word >> (pat % 64)) & 1 == 1;
                assert_eq!(got, expect[oi]);
            }
        }
    }

    #[test]
    fn random_patterns_have_right_shape() {
        let n = full_adder();
        let sim = Simulator::new(&n);
        let patterns = random_words(n.inputs().len(), 512, 3);
        let table = sim.simulate_patterns(&n, &patterns);
        assert_eq!(table.len(), n.gate_count());
        assert_eq!(table[0].len(), patterns.word_count());
    }

    #[test]
    #[should_panic]
    fn wrong_input_count_panics() {
        let n = full_adder();
        let sim = Simulator::new(&n);
        let _ = sim.simulate_word(&n, &[0, 0]);
    }

    #[test]
    fn constants_simulate() {
        let mut b = NetworkBuilder::new("c");
        b.input("a");
        b.constant("one", true);
        b.gate("f", GateType::Xor, &["a", "one"]);
        b.output("f");
        let n = b.finish().unwrap();
        let sim = Simulator::new(&n);
        assert_eq!(sim.simulate_bools(&n, &[false]), vec![true]);
        assert_eq!(sim.simulate_bools(&n, &[true]), vec![false]);
    }
}
