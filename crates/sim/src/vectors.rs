//! Input pattern generation for bit-parallel simulation.
//!
//! Patterns are stored column-wise: a [`PatternSet`] holds, for every primary
//! input, a vector of 64-bit words; bit `k` of word `w` is the value of that
//! input in pattern `64·w + k`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A set of simulation patterns for a fixed number of primary inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    /// `words[i][w]` holds 64 pattern bits of input `i`.
    pub words: Vec<Vec<u64>>,
    /// Total number of valid patterns (≤ `64 * words[0].len()`).
    pub pattern_count: usize,
}

impl PatternSet {
    /// Number of primary inputs covered by the set.
    pub fn input_count(&self) -> usize {
        self.words.len()
    }

    /// Number of 64-bit words per input.
    pub fn word_count(&self) -> usize {
        self.words.first().map_or(0, |w| w.len())
    }

    /// Returns the bit for input `input` in pattern `pattern`.
    pub fn bit(&self, input: usize, pattern: usize) -> bool {
        let word = pattern / 64;
        let bit = pattern % 64;
        (self.words[input][word] >> bit) & 1 == 1
    }
}

/// Generates `pattern_count` uniformly random patterns for `input_count`
/// inputs using a deterministic seed (reproducible experiments).
pub fn random_words(input_count: usize, pattern_count: usize, seed: u64) -> PatternSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let word_count = pattern_count.div_ceil(64).max(1);
    let words =
        (0..input_count).map(|_| (0..word_count).map(|_| rng.gen::<u64>()).collect()).collect();
    PatternSet { words, pattern_count: word_count * 64 }
}

/// Generates every one of the `2^input_count` input combinations.
///
/// # Panics
///
/// Panics if `input_count > 20` (that is more than a million patterns; use
/// random simulation instead).
pub fn exhaustive_words(input_count: usize) -> PatternSet {
    assert!(input_count <= 20, "exhaustive simulation limited to 20 inputs");
    let pattern_count = 1usize << input_count;
    let word_count = pattern_count.div_ceil(64).max(1);
    let mut words = vec![vec![0u64; word_count]; input_count];
    for p in 0..pattern_count {
        for (i, input_words) in words.iter_mut().enumerate() {
            if (p >> i) & 1 == 1 {
                input_words[p / 64] |= 1u64 << (p % 64);
            }
        }
    }
    // For fewer than 6 inputs the tail bits of the single word repeat the
    // pattern space; they are harmless but we report the true count.
    PatternSet { words, pattern_count }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let a = random_words(4, 256, 7);
        let b = random_words(4, 256, 7);
        let c = random_words(4, 256, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.input_count(), 4);
        assert_eq!(a.word_count(), 4);
    }

    #[test]
    fn exhaustive_covers_all_combinations() {
        let p = exhaustive_words(3);
        assert_eq!(p.pattern_count, 8);
        let mut seen = std::collections::HashSet::new();
        for pat in 0..8 {
            let combo: Vec<bool> = (0..3).map(|i| p.bit(i, pat)).collect();
            seen.insert(combo);
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn exhaustive_bit_matches_binary_encoding() {
        let p = exhaustive_words(4);
        for pat in 0..16 {
            for i in 0..4 {
                assert_eq!(p.bit(i, pat), (pat >> i) & 1 == 1);
            }
        }
    }

    #[test]
    #[should_panic]
    fn exhaustive_rejects_huge_inputs() {
        let _ = exhaustive_words(21);
    }

    #[test]
    fn zero_inputs() {
        let p = random_words(0, 64, 1);
        assert_eq!(p.input_count(), 0);
        let e = exhaustive_words(0);
        assert_eq!(e.pattern_count, 1);
    }
}
