//! # rapids-sim
//!
//! Bit-parallel logic simulation and simulation-based equivalence checking
//! for mapped Boolean networks.
//!
//! The rewiring engine uses simulation in two ways:
//!
//! * **Safety net** — after a batch of rewiring moves, random-vector (and for
//!   small circuits exhaustive) simulation confirms the network still
//!   computes the same primary-output functions as the original.
//! * **Signatures** — per-gate 64-bit-word signatures provide a cheap
//!   necessary condition for symmetry used by the test-suite to cross-check
//!   the structural detector.
//!
//! ```
//! use rapids_netlist::{GateType, NetworkBuilder};
//! use rapids_sim::Simulator;
//!
//! let mut b = NetworkBuilder::new("mux");
//! b.inputs(["s", "a", "b"]);
//! b.gate("ns", GateType::Inv, &["s"]);
//! b.gate("t0", GateType::And, &["ns", "a"]);
//! b.gate("t1", GateType::And, &["s", "b"]);
//! b.gate("y", GateType::Or, &["t0", "t1"]);
//! b.output("y");
//! let network = b.finish().unwrap();
//! let sim = Simulator::new(&network);
//! let out = sim.simulate_bools(&network, &[true, false, true]);
//! assert_eq!(out, vec![true]);
//! ```

pub mod equiv;
pub mod signatures;
pub mod simulator;
pub mod vectors;

pub use equiv::{check_equivalence_exhaustive, check_equivalence_random, EquivalenceResult};
pub use signatures::SignatureTable;
pub use simulator::Simulator;
pub use vectors::{exhaustive_words, random_words, PatternSet};
