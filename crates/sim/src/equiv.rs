//! Simulation-based equivalence checking between two networks.
//!
//! Rewiring must preserve the primary-output functions exactly; these checks
//! are the fast (random) and exact-for-small-circuits (exhaustive) oracles
//! used by tests and by the optimizer's optional self-check mode.

use rapids_netlist::Network;

use crate::simulator::Simulator;
use crate::vectors::{exhaustive_words, random_words, PatternSet};

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EquivalenceResult {
    /// No differing output was observed over the applied patterns.
    Equivalent,
    /// A counterexample pattern was found.
    Mismatch {
        /// Index of the first differing primary output.
        output_index: usize,
        /// Index of the first differing pattern.
        pattern_index: usize,
        /// The failing input vector, one value per primary input in input
        /// order — directly comparable to a CEC counterexample.
        inputs: Vec<bool>,
        /// The differing output bit of network `a` under that vector.
        output_a: bool,
        /// The differing output bit of network `b` under that vector.
        output_b: bool,
    },
    /// The two networks have different interfaces and cannot be compared.
    InterfaceMismatch,
}

impl EquivalenceResult {
    /// Returns `true` for [`EquivalenceResult::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivalenceResult::Equivalent)
    }
}

fn compare_with_patterns(a: &Network, b: &Network, patterns: &PatternSet) -> EquivalenceResult {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return EquivalenceResult::InterfaceMismatch;
    }
    let sim_a = Simulator::new(a);
    let sim_b = Simulator::new(b);
    let table_a = sim_a.simulate_patterns(a, patterns);
    let table_b = sim_b.simulate_patterns(b, patterns);
    let words = patterns.word_count();
    let valid_in_last_word = {
        let rem = patterns.pattern_count % 64;
        if rem == 0 {
            !0u64
        } else {
            (1u64 << rem) - 1
        }
    };
    for (oi, (pa, pb)) in a.outputs().iter().zip(b.outputs()).enumerate() {
        for w in 0..words {
            let mask = if w + 1 == words { valid_in_last_word } else { !0u64 };
            let wa = table_a[pa.driver.index()][w] & mask;
            let wb = table_b[pb.driver.index()][w] & mask;
            if wa != wb {
                let diff = wa ^ wb;
                let bit = diff.trailing_zeros() as usize;
                let pattern_index = w * 64 + bit;
                let inputs =
                    (0..a.inputs().len()).map(|i| patterns.bit(i, pattern_index)).collect();
                return EquivalenceResult::Mismatch {
                    output_index: oi,
                    pattern_index,
                    inputs,
                    output_a: wa >> bit & 1 == 1,
                    output_b: wb >> bit & 1 == 1,
                };
            }
        }
    }
    EquivalenceResult::Equivalent
}

/// Random-vector equivalence check with `pattern_count` patterns and a fixed
/// seed.  A mismatch is a definite non-equivalence; "equivalent" means no
/// difference was observed (probabilistic).
pub fn check_equivalence_random(
    a: &Network,
    b: &Network,
    pattern_count: usize,
    seed: u64,
) -> EquivalenceResult {
    let patterns = random_words(a.inputs().len(), pattern_count, seed);
    compare_with_patterns(a, b, &patterns)
}

/// Exhaustive equivalence check: applies all `2^n` patterns.  Exact, but only
/// usable for networks with at most 20 primary inputs.
///
/// # Panics
///
/// Panics if the networks have more than 20 primary inputs.
pub fn check_equivalence_exhaustive(a: &Network, b: &Network) -> EquivalenceResult {
    let patterns = exhaustive_words(a.inputs().len());
    compare_with_patterns(a, b, &patterns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rapids_netlist::{GateType, NetworkBuilder, PinRef};

    fn carry_chain(name: &str) -> Network {
        let mut b = NetworkBuilder::new(name);
        b.inputs(["a0", "b0", "a1", "b1", "cin"]);
        b.gate("p0", GateType::Xor, &["a0", "b0"]);
        b.gate("g0", GateType::And, &["a0", "b0"]);
        b.gate("t0", GateType::And, &["p0", "cin"]);
        b.gate("c1", GateType::Or, &["g0", "t0"]);
        b.gate("p1", GateType::Xor, &["a1", "b1"]);
        b.gate("g1", GateType::And, &["a1", "b1"]);
        b.gate("t1", GateType::And, &["p1", "c1"]);
        b.gate("c2", GateType::Or, &["g1", "t1"]);
        b.gate("s0", GateType::Xor, &["p0", "cin"]);
        b.gate("s1", GateType::Xor, &["p1", "c1"]);
        b.output("s0");
        b.output("s1");
        b.output("c2");
        b.finish().unwrap()
    }

    #[test]
    fn identical_networks_are_equivalent() {
        let a = carry_chain("a");
        let b = carry_chain("b");
        assert!(check_equivalence_exhaustive(&a, &b).is_equivalent());
        assert!(check_equivalence_random(&a, &b, 256, 1).is_equivalent());
    }

    #[test]
    fn symmetric_swap_is_equivalent() {
        let a = carry_chain("a");
        let mut b = carry_chain("b");
        let g0 = b.find_by_name("g0").unwrap();
        b.swap_pin_drivers(PinRef::new(g0, 0), PinRef::new(g0, 1)).unwrap();
        assert!(check_equivalence_exhaustive(&a, &b).is_equivalent());
    }

    #[test]
    fn broken_rewire_is_detected() {
        let a = carry_chain("a");
        let mut b = carry_chain("b");
        // Swap one pin of g0 with a pin of p1 — not a symmetry.
        let g0 = b.find_by_name("g0").unwrap();
        let p1 = b.find_by_name("p1").unwrap();
        b.swap_pin_drivers(PinRef::new(g0, 0), PinRef::new(p1, 0)).unwrap();
        let result = check_equivalence_exhaustive(&a, &b);
        assert!(matches!(result, EquivalenceResult::Mismatch { .. }));
    }

    #[test]
    fn interface_mismatch() {
        let a = carry_chain("a");
        let mut b = NetworkBuilder::new("tiny");
        b.input("x");
        b.gate("y", GateType::Inv, &["x"]);
        b.output("y");
        let b = b.finish().unwrap();
        assert_eq!(check_equivalence_exhaustive(&a, &b), EquivalenceResult::InterfaceMismatch);
    }

    #[test]
    fn mismatch_reports_counterexample_index() {
        let mut x = NetworkBuilder::new("x");
        x.inputs(["a", "b"]);
        x.gate("f", GateType::And, &["a", "b"]);
        x.output("f");
        let x = x.finish().unwrap();
        let mut y = NetworkBuilder::new("y");
        y.inputs(["a", "b"]);
        y.gate("f", GateType::Or, &["a", "b"]);
        y.output("f");
        let y = y.finish().unwrap();
        match check_equivalence_exhaustive(&x, &y) {
            EquivalenceResult::Mismatch {
                output_index,
                pattern_index,
                inputs,
                output_a,
                output_b,
            } => {
                assert_eq!(output_index, 0);
                // AND and OR differ exactly on patterns 01 and 10.
                assert!(pattern_index == 1 || pattern_index == 2);
                // The surfaced input vector is the failing pattern itself…
                assert_eq!(inputs, vec![pattern_index == 1, pattern_index == 2]);
                // …and the output bits replay it: AND gives 0, OR gives 1.
                assert!(!output_a);
                assert!(output_b);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }
}
