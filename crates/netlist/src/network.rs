//! The mapped Boolean network: a DAG of gates with maintained fan-out lists
//! and the editing operations needed by rewiring and sizing.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::NetlistError;
use crate::gate::{Gate, GateId, GateType, PinRef};

/// A named primary output: the gate that drives it plus the port name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputPort {
    /// Driver of the output port.
    pub driver: GateId,
    /// Port name.
    pub name: String,
}

/// A mapped, combinational Boolean network.
///
/// Vertices are [`Gate`]s; edges run from a driver gate to each fan-in pin of
/// its fan-out gates.  The network keeps the reverse adjacency (fan-out lists)
/// up to date across edits so that rewiring moves, sizing and incremental
/// timing can all run without rebuilding global state.
///
/// Removed gates are tomb-stoned (their slot remains, `removed = true`) so
/// that [`GateId`]s held by other data structures never dangle — with one
/// carve-out: [`Network::pop_trailing_tombstone`] lets undo paths retire a
/// *trailing* tomb-stone so apply→undo probe sequences keep the slot count
/// stable.  Ids of popped slots index past `gate_count()` until the slot is
/// reused; holders of journaled ids must treat them as potentially stale
/// after an undo (query [`Network::is_live`], which is total, rather than
/// [`Network::gate`], which is not).
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    gates: Vec<Gate>,
    fanouts: Vec<Vec<GateId>>,
    inputs: Vec<GateId>,
    outputs: Vec<OutputPort>,
    /// Topological position per gate slot, when known (see
    /// [`Network::refresh_topo_hint`]).  An edit that inserts an edge
    /// violating the recorded order drops the hint; every other edit keeps it
    /// valid, so cycle checks stay O(1) across long runs of rewiring moves.
    /// Shared (`Arc`) so callers that apply-then-undo a move can snapshot and
    /// reinstate it in O(1) — see [`Network::topo_hint_handle`].
    topo_hint: Option<Arc<Vec<u32>>>,
}

impl Network {
    /// Creates an empty network with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            gates: Vec::new(),
            fanouts: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            topo_hint: None,
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a primary input and returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.push_gate(Gate::new(GateType::Input, Vec::new(), name));
        self.inputs.push(id);
        id
    }

    /// Adds a constant-0 or constant-1 source gate.
    pub fn add_constant(&mut self, value: bool, name: impl Into<String>) -> GateId {
        let gtype = if value { GateType::Const1 } else { GateType::Const0 };
        self.push_gate(Gate::new(gtype, Vec::new(), name))
    }

    /// Adds a logic gate driven by `fanins` and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidFaninCount`] if the fan-in count is not
    /// legal for the type, or [`NetlistError::UnknownGate`] if a driver id
    /// does not exist (or is tomb-stoned).
    pub fn add_gate(
        &mut self,
        gtype: GateType,
        fanins: &[GateId],
        name: impl Into<String>,
    ) -> Result<GateId, NetlistError> {
        if !gtype.accepts_fanin_count(fanins.len()) {
            return Err(NetlistError::InvalidFaninCount {
                gate_type: gtype.mnemonic(),
                requested: fanins.len(),
            });
        }
        for &f in fanins {
            self.check_live(f)?;
        }
        let id = self.push_gate(Gate::new(gtype, fanins.to_vec(), name));
        for &f in fanins {
            self.fanouts[f.index()].push(id);
        }
        Ok(id)
    }

    /// Declares `driver` to be a primary output named `name`.
    pub fn add_output(&mut self, driver: GateId, name: impl Into<String>) {
        self.outputs.push(OutputPort { driver, name: name.into() });
    }

    fn push_gate(&mut self, gate: Gate) -> GateId {
        let id = GateId(self.gates.len() as u32);
        self.gates.push(gate);
        self.fanouts.push(Vec::new());
        if let Some(hint) = &mut self.topo_hint {
            // A fresh gate has no fan-outs, so placing it after every existing
            // gate keeps the recorded order valid.
            Arc::make_mut(hint).push(id.0);
        }
        id
    }

    // ------------------------------------------------------------------
    // Topological hint
    // ------------------------------------------------------------------

    /// Records the current topological order so that subsequent edge edits
    /// can prove acyclicity with an O(1) position comparison instead of the
    /// O(V+E) fan-out DFS in [`Network::reaches`].
    ///
    /// The hint is maintained automatically: adding a gate extends it, and an
    /// edit that inserts an edge *violating* the recorded order (legal, but
    /// no longer consistent with the snapshot) silently drops it, falling
    /// back to the DFS until it is refreshed.  Returns `false` (and records
    /// nothing) if the network is cyclic.
    pub fn refresh_topo_hint(&mut self) -> bool {
        match crate::topo::topological_order(self) {
            Some(order) => {
                let mut pos = vec![u32::MAX; self.gates.len()];
                for (i, g) in order.iter().enumerate() {
                    pos[g.index()] = i as u32;
                }
                // Tomb-stoned slots keep u32::MAX: they have no edges, so any
                // position is consistent.
                self.topo_hint = Some(Arc::new(pos));
                true
            }
            None => {
                self.topo_hint = None;
                false
            }
        }
    }

    /// The recorded topological position array, if a valid hint is active
    /// (indexed by `GateId::index()`; tomb-stoned slots hold `u32::MAX`).
    pub fn topo_hint(&self) -> Option<&[u32]> {
        self.topo_hint.as_deref().map(|v| v.as_slice())
    }

    /// A shareable handle to the active hint, for callers that apply a move,
    /// evaluate it and undo it: snapshot the handle before the move and hand
    /// it back via [`Network::reinstate_topo_hint`] after the undo.  O(1).
    pub fn topo_hint_handle(&self) -> Option<Arc<Vec<u32>>> {
        self.topo_hint.clone()
    }

    /// Reinstates a hint previously obtained from
    /// [`Network::topo_hint_handle`].
    ///
    /// Contract: the network's edge set must equal the edge set at the time
    /// the handle was taken (fan-out list *order* may differ).  This is
    /// exactly the situation after undoing an applied move; reinstating a
    /// hint under any other circumstances makes future cycle checks unsound.
    pub fn reinstate_topo_hint(&mut self, hint: Arc<Vec<u32>>) {
        debug_assert_eq!(hint.len(), self.gates.len(), "hint predates a network resize");
        self.topo_hint = Some(hint);
    }

    /// Drops the recorded topological hint.
    pub fn clear_topo_hint(&mut self) {
        self.topo_hint = None;
    }

    /// O(1) acyclicity proof for a prospective edge `driver → sink`: `true`
    /// when the active hint places the driver strictly before the sink, in
    /// which case the edge cannot close a cycle (reachability implies order).
    fn hint_proves_acyclic(&self, driver: GateId, sink: GateId) -> bool {
        match &self.topo_hint {
            Some(pos) => pos[driver.index()] < pos[sink.index()],
            None => false,
        }
    }

    /// Like [`Network::reaches`], but prunes the fan-out DFS with the active
    /// hint: along any path the recorded position strictly increases, so
    /// nodes positioned after `target` can never lead to it.  Falls back to
    /// the unpruned walk when no hint is active.
    fn reaches_pruned(&self, from: GateId, target: GateId) -> bool {
        let Some(pos) = self.topo_hint.as_deref() else {
            return self.reaches(from, target);
        };
        if from == target {
            return true;
        }
        let bound = pos[target.index()];
        if pos[from.index()] > bound {
            return false;
        }
        let mut seen = vec![false; self.gates.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(g) = stack.pop() {
            for &s in &self.fanouts[g.index()] {
                if s == target {
                    return true;
                }
                if !seen[s.index()] && pos[s.index()] <= bound {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Total number of gate slots ever allocated, including inputs, constants
    /// and tomb-stoned gates.  Use [`Network::live_gate_count`] for the number
    /// of live vertices.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of live (non-removed) gates, including inputs and constants.
    pub fn live_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.removed).count()
    }

    /// Number of live logic gates (excludes inputs and constants).
    pub fn logic_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| !g.removed && !g.gtype.is_source()).count()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[OutputPort] {
        &self.outputs
    }

    /// Returns the gate record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Mutable access to a gate record (used by sizing to change the
    /// drive-strength class).
    pub fn gate_mut(&mut self, id: GateId) -> &mut Gate {
        &mut self.gates[id.index()]
    }

    /// Returns `Ok(())` if the id exists and is not tomb-stoned.
    pub fn check_live(&self, id: GateId) -> Result<(), NetlistError> {
        match self.gates.get(id.index()) {
            Some(g) if !g.removed => Ok(()),
            _ => Err(NetlistError::UnknownGate(id)),
        }
    }

    /// Returns `true` if the id refers to a live gate.
    pub fn is_live(&self, id: GateId) -> bool {
        self.check_live(id).is_ok()
    }

    /// Fan-in drivers of a gate in pin order.
    pub fn fanins(&self, id: GateId) -> &[GateId] {
        &self.gates[id.index()].fanins
    }

    /// Fan-out gates of a gate.  A gate appears once per in-pin it drives, so
    /// a driver feeding two pins of the same sink is listed twice.
    pub fn fanouts(&self, id: GateId) -> &[GateId] {
        &self.fanouts[id.index()]
    }

    /// Number of sink pins driven by this gate plus the number of primary
    /// outputs it drives (the net degree used by the star wire model).
    pub fn fanout_degree(&self, id: GateId) -> usize {
        self.fanouts[id.index()].len() + self.outputs.iter().filter(|o| o.driver == id).count()
    }

    /// Returns `true` if the gate drives at most one sink pin and no more
    /// than one primary output in total — the *fanout-free* condition used
    /// throughout §3 of the paper.
    pub fn is_fanout_free(&self, id: GateId) -> bool {
        self.fanout_degree(id) <= 1
    }

    /// Returns `true` if the gate drives a primary output port.
    pub fn drives_output(&self, id: GateId) -> bool {
        self.outputs.iter().any(|o| o.driver == id)
    }

    /// Iterator over live gate ids.
    pub fn iter_live(&self) -> impl Iterator<Item = GateId> + '_ {
        self.gates.iter().enumerate().filter(|(_, g)| !g.removed).map(|(i, _)| GateId(i as u32))
    }

    /// Iterator over live logic-gate ids (excludes inputs and constants).
    pub fn iter_logic(&self) -> impl Iterator<Item = GateId> + '_ {
        self.gates
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.removed && !g.gtype.is_source())
            .map(|(i, _)| GateId(i as u32))
    }

    /// Looks up a gate by instance name (linear scan; intended for tests and
    /// the BLIF reader, not hot paths).
    pub fn find_by_name(&self, name: &str) -> Option<GateId> {
        self.gates.iter().position(|g| !g.removed && g.name == name).map(|i| GateId(i as u32))
    }

    /// Driver connected to the given in-pin.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidPinIndex`] if the pin does not exist.
    pub fn pin_driver(&self, pin: PinRef) -> Result<GateId, NetlistError> {
        self.check_live(pin.gate)?;
        let g = self.gate(pin.gate);
        g.fanins.get(pin.index).copied().ok_or(NetlistError::InvalidPinIndex {
            gate: pin.gate,
            index: pin.index,
            fanin_count: g.fanins.len(),
        })
    }

    // ------------------------------------------------------------------
    // Editing
    // ------------------------------------------------------------------

    /// Reconnects in-pin `pin` to `new_driver`, maintaining fan-out lists.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::InvalidPinIndex`] if the pin does not exist.
    /// * [`NetlistError::UnknownGate`] if `new_driver` is not live.
    /// * [`NetlistError::WouldCreateCycle`] if `new_driver` lies in the
    ///   transitive fan-out of the pin's gate.
    pub fn replace_pin_driver(
        &mut self,
        pin: PinRef,
        new_driver: GateId,
    ) -> Result<GateId, NetlistError> {
        let old = self.pin_driver(pin)?;
        self.check_live(new_driver)?;
        if old == new_driver {
            return Ok(old);
        }
        if self.hint_proves_acyclic(new_driver, pin.gate) {
            // The recorded order stays a valid topological order of the
            // edited graph, so the hint survives this edit.
        } else {
            if self.reaches_pruned(pin.gate, new_driver) {
                return Err(NetlistError::WouldCreateCycle { gate: pin.gate, driver: new_driver });
            }
            // Legal edge, but it contradicts the recorded order (or no hint
            // is active): the snapshot can no longer prove anything.
            self.topo_hint = None;
        }
        self.detach_fanout(old, pin.gate);
        self.gates[pin.gate.index()].fanins[pin.index] = new_driver;
        self.fanouts[new_driver.index()].push(pin.gate);
        Ok(old)
    }

    /// Reconnects in-pin `pin` to `new_driver` **without the cycle check**,
    /// for callers restoring a journaled, known-acyclic edge (undo paths).
    /// The topological hint survives when it proves the restored edge and is
    /// dropped otherwise — it is never used to *reject* the edit.
    ///
    /// Restoring an edge that was not previously present (or any edge whose
    /// acyclicity the caller cannot vouch for) can corrupt the network with
    /// a combinational cycle; use [`Network::replace_pin_driver`] for
    /// speculative edits.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::InvalidPinIndex`] if the pin does not exist.
    /// * [`NetlistError::UnknownGate`] if `new_driver` is not live.
    pub fn restore_pin_driver(
        &mut self,
        pin: PinRef,
        new_driver: GateId,
    ) -> Result<GateId, NetlistError> {
        let old = self.pin_driver(pin)?;
        self.check_live(new_driver)?;
        if old == new_driver {
            return Ok(old);
        }
        if !self.hint_proves_acyclic(new_driver, pin.gate) {
            self.topo_hint = None;
        }
        self.detach_fanout(old, pin.gate);
        self.gates[pin.gate.index()].fanins[pin.index] = new_driver;
        self.fanouts[new_driver.index()].push(pin.gate);
        Ok(old)
    }

    /// Swaps the drivers of two in-pins (the elementary rewiring move of
    /// §4.1).  The placement is untouched; only the two nets change.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`Network::replace_pin_driver`]; if the
    /// second replacement fails the first one is rolled back.
    pub fn swap_pin_drivers(&mut self, a: PinRef, b: PinRef) -> Result<(), NetlistError> {
        let da = self.pin_driver(a)?;
        let db = self.pin_driver(b)?;
        if da == db {
            return Ok(());
        }
        if self.hint_proves_acyclic(db, a.gate) && self.hint_proves_acyclic(da, b.gate) {
            // Both exchanged edges respect the recorded order, so the swapped
            // graph is acyclic *and* the hint stays valid: rewire directly,
            // skipping the per-edge checks.
            self.detach_fanout(da, a.gate);
            self.gates[a.gate.index()].fanins[a.index] = db;
            self.fanouts[db.index()].push(a.gate);
            self.detach_fanout(db, b.gate);
            self.gates[b.gate.index()].fanins[b.index] = da;
            self.fanouts[da.index()].push(b.gate);
            return Ok(());
        }
        self.replace_pin_driver(a, db)?;
        if let Err(e) = self.replace_pin_driver(b, da) {
            // Roll back the first edit to keep the network consistent.
            self.replace_pin_driver(a, da).expect("rollback of pin swap cannot fail");
            return Err(e);
        }
        Ok(())
    }

    /// Returns `true` if `target` is reachable from `from` by following
    /// fan-out edges (i.e. `target` is in the transitive fan-out of `from`,
    /// or equals it).  Used for cycle prevention.
    pub fn reaches(&self, from: GateId, target: GateId) -> bool {
        if from == target {
            return true;
        }
        let mut seen = vec![false; self.gates.len()];
        let mut stack = vec![from];
        seen[from.index()] = true;
        while let Some(g) = stack.pop() {
            for &s in &self.fanouts[g.index()] {
                if s == target {
                    return true;
                }
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Inserts an inverter between the driver of `pin` and the pin itself,
    /// returning the new inverter's id.  Used by inverting swaps (Lemma 7)
    /// and by the DeMorgan transform (Definition 4).
    ///
    /// # Errors
    ///
    /// Returns an error if the pin does not exist.
    pub fn insert_inverter(
        &mut self,
        pin: PinRef,
        name: impl Into<String>,
    ) -> Result<GateId, NetlistError> {
        let driver = self.pin_driver(pin)?;
        let inv =
            self.add_gate(GateType::Inv, &[driver], name).expect("inverter fanin is always valid");
        self.detach_fanout(driver, pin.gate);
        self.gates[pin.gate.index()].fanins[pin.index] = inv;
        self.fanouts[inv.index()].push(pin.gate);
        // The inverter was appended after every existing gate, so the edge
        // inverter → sink contradicts the recorded order.
        self.topo_hint = None;
        Ok(inv)
    }

    /// Changes the logic type of a gate in place (used by the DeMorgan
    /// transform: AND ⇄ OR with inversions absorbed at the pins).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidFaninCount`] if the existing fan-in
    /// count is illegal for the new type.
    pub fn set_gate_type(&mut self, id: GateId, gtype: GateType) -> Result<(), NetlistError> {
        self.check_live(id)?;
        let count = self.gates[id.index()].fanins.len();
        if !gtype.accepts_fanin_count(count) {
            return Err(NetlistError::InvalidFaninCount {
                gate_type: gtype.mnemonic(),
                requested: count,
            });
        }
        self.gates[id.index()].gtype = gtype;
        Ok(())
    }

    /// Removes a gate that no longer drives anything, tomb-stoning its slot.
    /// Its fan-in edges are detached.  Returns `true` if the gate was removed,
    /// `false` if it still has fan-outs or drives a primary output.
    pub fn remove_if_dangling(&mut self, id: GateId) -> bool {
        if !self.is_live(id) {
            return false;
        }
        if !self.fanouts[id.index()].is_empty() || self.drives_output(id) {
            return false;
        }
        let fanins = std::mem::take(&mut self.gates[id.index()].fanins);
        for f in fanins {
            self.detach_fanout(f, id);
        }
        self.gates[id.index()].removed = true;
        self.inputs.retain(|&i| i != id);
        true
    }

    /// Pops the last gate slot if (and only if) it is tomb-stoned, returning
    /// `true` on success.  Tomb-stones keep no edges, so dropping a trailing
    /// one is always structurally sound; the point of popping is that a
    /// subsequent [`Network::add_gate`] reuses the slot index, which keeps
    /// apply→undo probe sequences (e.g. scoring an inverting swap) from
    /// growing the slot count — and with it every id-indexed side array —
    /// monotonically.  Callers that cache per-slot state must invalidate a
    /// reused slot before reading it, exactly as for a fresh slot.
    pub fn pop_trailing_tombstone(&mut self) -> bool {
        match self.gates.last() {
            Some(g) if g.removed => {}
            _ => return false,
        }
        self.gates.pop();
        self.fanouts.pop();
        if let Some(hint) = &mut self.topo_hint {
            Arc::make_mut(hint).pop();
        }
        true
    }

    /// Removes dangling gates repeatedly until a fixed point is reached
    /// (dead-logic sweep after redundancy removal).  Returns the number of
    /// gates removed.
    pub fn sweep_dangling(&mut self) -> usize {
        let mut removed = 0;
        loop {
            let candidates: Vec<GateId> = self
                .iter_logic()
                .filter(|&g| self.fanouts[g.index()].is_empty() && !self.drives_output(g))
                .collect();
            if candidates.is_empty() {
                break;
            }
            for g in candidates {
                if self.remove_if_dangling(g) {
                    removed += 1;
                }
            }
        }
        removed
    }

    /// Bypasses a buffer/inverter pair or redirects all sinks of `gate` to
    /// `replacement`, then tomb-stones `gate` if it became dangling.
    /// Primary-output ports driven by `gate` are redirected as well.
    ///
    /// # Errors
    ///
    /// Returns an error if either id is not live or the move would create a
    /// cycle.
    pub fn replace_all_uses(
        &mut self,
        gate: GateId,
        replacement: GateId,
    ) -> Result<(), NetlistError> {
        self.check_live(gate)?;
        self.check_live(replacement)?;
        if gate == replacement {
            return Ok(());
        }
        let sinks = self.fanouts[gate.index()].clone();
        for sink in sinks {
            let pins: Vec<usize> = self.gates[sink.index()]
                .fanins
                .iter()
                .enumerate()
                .filter(|(_, &d)| d == gate)
                .map(|(i, _)| i)
                .collect();
            for idx in pins {
                self.replace_pin_driver(PinRef::new(sink, idx), replacement)?;
            }
        }
        for o in &mut self.outputs {
            if o.driver == gate {
                o.driver = replacement;
            }
        }
        self.remove_if_dangling(gate);
        Ok(())
    }

    /// Redirects every primary-output port currently driven by `from` to be
    /// driven by `to` instead, leaving gate-to-gate connectivity untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if `to` is not a live gate.
    pub fn redirect_output_ports(
        &mut self,
        from: GateId,
        to: GateId,
    ) -> Result<usize, NetlistError> {
        self.check_live(to)?;
        let mut moved = 0;
        for o in &mut self.outputs {
            if o.driver == from {
                o.driver = to;
                moved += 1;
            }
        }
        Ok(moved)
    }

    fn detach_fanout(&mut self, driver: GateId, sink: GateId) {
        let list = &mut self.fanouts[driver.index()];
        if let Some(pos) = list.iter().position(|&s| s == sink) {
            list.swap_remove(pos);
        }
    }

    // ------------------------------------------------------------------
    // Consistency
    // ------------------------------------------------------------------

    /// Exhaustively checks internal invariants: fan-out lists match fan-in
    /// lists, no live gate references a tomb-stoned driver, fan-in counts are
    /// legal and the graph is acyclic.  Intended for tests and debug builds.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn check_consistency(&self) -> Result<(), String> {
        // Fan-in legality and liveness.
        let mut expected_fanouts: HashMap<(GateId, GateId), usize> = HashMap::new();
        for id in self.iter_live() {
            let g = self.gate(id);
            if !g.gtype.accepts_fanin_count(g.fanins.len()) {
                return Err(format!("gate {id} has illegal fanin count {}", g.fanins.len()));
            }
            for &f in &g.fanins {
                if !self.is_live(f) {
                    return Err(format!("gate {id} references dead driver {f}"));
                }
                *expected_fanouts.entry((f, id)).or_insert(0) += 1;
            }
        }
        // Fan-out lists match.
        let mut actual_fanouts: HashMap<(GateId, GateId), usize> = HashMap::new();
        for id in self.iter_live() {
            for &s in &self.fanouts[id.index()] {
                *actual_fanouts.entry((id, s)).or_insert(0) += 1;
            }
        }
        if expected_fanouts != actual_fanouts {
            return Err("fanout lists are out of sync with fanin lists".to_string());
        }
        // Outputs reference live gates.
        for o in &self.outputs {
            if !self.is_live(o.driver) {
                return Err(format!("output {} driven by dead gate {}", o.name, o.driver));
            }
        }
        // Acyclicity via the topological sort.
        if crate::topo::topological_order(self).is_none() {
            return Err("network contains a combinational cycle".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (Network, GateId, GateId, GateId, GateId) {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let g1 = n.add_gate(GateType::And, &[a, b], "g1").unwrap();
        let f = n.add_gate(GateType::Or, &[g1, c], "f").unwrap();
        n.add_output(f, "f");
        (n, a, b, c, g1)
    }

    #[test]
    fn build_and_query() {
        let (n, a, b, c, g1) = small();
        assert_eq!(n.gate_count(), 5);
        assert_eq!(n.logic_gate_count(), 2);
        assert_eq!(n.inputs(), &[a, b, c]);
        assert_eq!(n.fanins(g1), &[a, b]);
        assert_eq!(n.fanouts(a), &[g1]);
        assert!(n.is_fanout_free(g1));
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn invalid_fanin_count_rejected() {
        let mut n = Network::new("t");
        let a = n.add_input("a");
        let err = n.add_gate(GateType::Inv, &[a, a], "bad").unwrap_err();
        assert!(matches!(err, NetlistError::InvalidFaninCount { .. }));
        let err = n.add_gate(GateType::And, &[a], "bad2").unwrap_err();
        assert!(matches!(err, NetlistError::InvalidFaninCount { .. }));
    }

    #[test]
    fn unknown_driver_rejected() {
        let mut n = Network::new("t");
        let err = n.add_gate(GateType::Buf, &[GateId(42)], "b").unwrap_err();
        assert!(matches!(err, NetlistError::UnknownGate(_)));
    }

    #[test]
    fn replace_pin_driver_updates_fanouts() {
        let (mut n, a, _b, c, g1) = small();
        let old = n.replace_pin_driver(PinRef::new(g1, 0), c).unwrap();
        assert_eq!(old, a);
        assert_eq!(n.fanins(g1), &[c, n.fanins(g1)[1]]);
        assert!(n.fanouts(a).is_empty());
        assert_eq!(n.fanouts(c).len(), 2);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn swap_pin_drivers_roundtrip() {
        let (mut n, a, b, c, g1) = small();
        let f = n.find_by_name("f").unwrap();
        n.swap_pin_drivers(PinRef::new(g1, 0), PinRef::new(f, 1)).unwrap();
        assert_eq!(n.fanins(g1), &[c, b]);
        assert_eq!(n.fanins(f), &[g1, a]);
        n.swap_pin_drivers(PinRef::new(g1, 0), PinRef::new(f, 1)).unwrap();
        assert_eq!(n.fanins(g1), &[a, b]);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn cycle_prevention() {
        let (mut n, _a, _b, _c, g1) = small();
        let f = n.find_by_name("f").unwrap();
        // Connecting f as a driver of g1 would form a cycle.
        let err = n.replace_pin_driver(PinRef::new(g1, 0), f).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCreateCycle { .. }));
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn insert_inverter_rewires_single_pin() {
        let (mut n, a, _b, _c, g1) = small();
        let inv = n.insert_inverter(PinRef::new(g1, 0), "n1").unwrap();
        assert_eq!(n.fanins(g1)[0], inv);
        assert_eq!(n.fanins(inv), &[a]);
        assert_eq!(n.fanouts(a), &[inv]);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn set_gate_type_checks_arity() {
        let (mut n, _a, _b, _c, g1) = small();
        n.set_gate_type(g1, GateType::Nor).unwrap();
        assert_eq!(n.gate(g1).gtype, GateType::Nor);
        assert!(n.set_gate_type(g1, GateType::Inv).is_err());
    }

    #[test]
    fn remove_and_sweep() {
        let (mut n, a, b, _c, g1) = small();
        let f = n.find_by_name("f").unwrap();
        // Disconnect g1 from f, then g1 is dangling and can be swept.
        n.replace_pin_driver(PinRef::new(f, 0), a).unwrap();
        assert!(n.fanouts(g1).is_empty());
        let removed = n.sweep_dangling();
        assert_eq!(removed, 1);
        assert!(!n.is_live(g1));
        assert!(n.is_live(b));
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn pop_trailing_tombstone_reuses_slots() {
        let (mut n, a, _b, _c, g1) = small();
        let before = n.gate_count();
        let inv = n.insert_inverter(PinRef::new(g1, 0), "probe_inv").unwrap();
        assert_eq!(n.gate_count(), before + 1);
        // Live gates are never popped.
        assert!(!n.pop_trailing_tombstone());
        // Undo the insertion: reconnect the pin and sweep the inverter.
        n.replace_pin_driver(PinRef::new(g1, 0), a).unwrap();
        assert!(n.remove_if_dangling(inv));
        assert!(n.pop_trailing_tombstone());
        assert!(!n.pop_trailing_tombstone());
        assert_eq!(n.gate_count(), before);
        // The next insertion reuses the popped slot index.
        let inv2 = n.insert_inverter(PinRef::new(g1, 0), "probe_inv2").unwrap();
        assert_eq!(inv2, inv);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn replace_all_uses_redirects_outputs() {
        let (mut n, a, _b, _c, g1) = small();
        let f = n.find_by_name("f").unwrap();
        n.add_output(g1, "aux");
        n.replace_all_uses(g1, a).unwrap();
        assert_eq!(n.fanins(f)[0], a);
        assert!(n.outputs().iter().all(|o| o.driver != g1));
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn topo_hint_survives_order_respecting_edits() {
        let (mut n, a, _b, c, g1) = small();
        assert!(n.topo_hint().is_none());
        assert!(n.refresh_topo_hint());
        // Reconnecting g1's a-pin to input c respects the topological order
        // (inputs precede logic), so the hint must survive.
        n.replace_pin_driver(PinRef::new(g1, 0), c).unwrap();
        assert!(n.topo_hint().is_some());
        // And the hint still proves real cycles impossible: connecting f as a
        // driver of g1 must still be rejected.
        let f = n.find_by_name("f").unwrap();
        let err = n.replace_pin_driver(PinRef::new(g1, 0), f).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCreateCycle { .. }));
        // Adding a gate extends the hint rather than dropping it.
        let g2 = n.add_gate(GateType::And, &[a, c], "g2").unwrap();
        assert_eq!(n.topo_hint().unwrap()[g2.index()], g2.0);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn topo_hint_dropped_by_order_violating_edit() {
        // f (later slot) becomes the driver of a *new* gate placed even
        // later, then that gate is wired as driver of g1 (earlier slot):
        // legal, but contradicts the recorded order.
        let (mut n, a, _b, _c, g1) = small();
        assert!(n.refresh_topo_hint());
        let late = n.add_gate(GateType::Buf, &[a], "late").unwrap();
        // late is positioned after g1 in the hint but does not reach g1, so
        // the edge late → g1 is legal yet order-violating.
        n.replace_pin_driver(PinRef::new(g1, 0), late).unwrap();
        assert!(n.topo_hint().is_none());
        assert!(n.check_consistency().is_ok());
        // Refreshing restores a valid hint.
        assert!(n.refresh_topo_hint());
        assert!(n.topo_hint().is_some());
    }

    #[test]
    fn topo_hint_dropped_by_inserted_inverter() {
        let (mut n, _a, _b, _c, g1) = small();
        assert!(n.refresh_topo_hint());
        n.insert_inverter(PinRef::new(g1, 0), "inv0").unwrap();
        assert!(n.topo_hint().is_none());
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn fanout_degree_counts_ports() {
        let (mut n, a, _b, _c, _g1) = small();
        assert_eq!(n.fanout_degree(a), 1);
        n.add_output(a, "a_copy");
        assert_eq!(n.fanout_degree(a), 2);
        assert!(!n.is_fanout_free(a));
    }
}
