//! Topological ordering, levelization and reverse-topological traversal.
//!
//! The GISG extraction of §3.2 processes gates "in a reverse topological
//! order" starting from the primary outputs; static timing analysis processes
//! them forward.  Both orders are produced here.

use crate::gate::GateId;
use crate::network::Network;

/// Returns the live gates of the network in topological order (every driver
/// precedes its sinks), or `None` if the network contains a cycle.
///
/// Sources (primary inputs and constants) come first.  Tomb-stoned gates are
/// skipped.
pub fn topological_order(network: &Network) -> Option<Vec<GateId>> {
    let n = network.gate_count();
    let mut indegree = vec![0usize; n];
    let mut live = vec![false; n];
    for id in network.iter_live() {
        live[id.index()] = true;
        indegree[id.index()] = network.fanins(id).len();
    }
    let mut queue: Vec<GateId> =
        network.iter_live().filter(|&g| indegree[g.index()] == 0).collect();
    let mut order = Vec::with_capacity(network.live_gate_count());
    let mut head = 0;
    while head < queue.len() {
        let g = queue[head];
        head += 1;
        order.push(g);
        for &s in network.fanouts(g) {
            if !live[s.index()] {
                continue;
            }
            indegree[s.index()] -= 1;
            if indegree[s.index()] == 0 {
                queue.push(s);
            }
        }
    }
    if order.len() == network.live_gate_count() {
        Some(order)
    } else {
        None
    }
}

/// Returns the live gates in reverse topological order (every sink precedes
/// its drivers), or `None` if the network contains a cycle.
pub fn reverse_topological_order(network: &Network) -> Option<Vec<GateId>> {
    topological_order(network).map(|mut v| {
        v.reverse();
        v
    })
}

/// Logic level of every gate: inputs/constants are level 0, every other gate
/// is `1 + max(level of fanins)`.  Indexed by `GateId::index()`; slots of
/// tomb-stoned gates hold 0.
///
/// # Panics
///
/// Panics if the network contains a cycle (checked in debug via the
/// topological sort).
pub fn levels(network: &Network) -> Vec<usize> {
    let order = topological_order(network).expect("levelization requires an acyclic network");
    levels_from_order(network, &order)
}

/// [`levels`] over an already-computed topological order, so callers that
/// cache the order (the incremental and levelized timing engines) do not pay
/// for a second Kahn sweep.  `order` must be a valid topological order of
/// the network's live gates; with a stale or partial order the result is
/// unspecified (but the function does not panic).
pub fn levels_from_order(network: &Network, order: &[GateId]) -> Vec<usize> {
    let mut level = vec![0usize; network.gate_count()];
    for &g in order {
        let l = network.fanins(g).iter().map(|f| level[f.index()] + 1).max().unwrap_or(0);
        level[g.index()] = l;
    }
    level
}

/// Maximum logic level over the drivers of all primary outputs (the depth of
/// the combinational network).
pub fn depth(network: &Network) -> usize {
    let level = levels(network);
    network.outputs().iter().map(|o| level[o.driver.index()]).max().unwrap_or(0)
}

/// Gates in the transitive fan-in cone of `root`, including `root` itself.
pub fn transitive_fanin(network: &Network, root: GateId) -> Vec<GateId> {
    let mut seen = vec![false; network.gate_count()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    seen[root.index()] = true;
    while let Some(g) = stack.pop() {
        cone.push(g);
        for &f in network.fanins(g) {
            if !seen[f.index()] {
                seen[f.index()] = true;
                stack.push(f);
            }
        }
    }
    cone
}

/// Gates in the transitive fan-out cone of `root`, including `root` itself.
pub fn transitive_fanout(network: &Network, root: GateId) -> Vec<GateId> {
    let mut seen = vec![false; network.gate_count()];
    let mut stack = vec![root];
    let mut cone = Vec::new();
    seen[root.index()] = true;
    while let Some(g) = stack.pop() {
        cone.push(g);
        for &s in network.fanouts(g) {
            if !seen[s.index()] {
                seen[s.index()] = true;
                stack.push(s);
            }
        }
    }
    cone
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateType;

    fn chain() -> (Network, Vec<GateId>) {
        // a -> inv -> inv -> ... 5 levels deep
        let mut n = Network::new("chain");
        let a = n.add_input("a");
        let mut ids = vec![a];
        let mut prev = a;
        for i in 0..5 {
            let g = n.add_gate(GateType::Inv, &[prev], format!("i{i}")).unwrap();
            ids.push(g);
            prev = g;
        }
        n.add_output(prev, "out");
        (n, ids)
    }

    #[test]
    fn topological_respects_edges() {
        let (n, _) = chain();
        let order = topological_order(&n).unwrap();
        assert_eq!(order.len(), n.live_gate_count());
        let pos: Vec<usize> = {
            let mut p = vec![0; n.gate_count()];
            for (i, g) in order.iter().enumerate() {
                p[g.index()] = i;
            }
            p
        };
        for g in n.iter_live() {
            for &f in n.fanins(g) {
                assert!(pos[f.index()] < pos[g.index()]);
            }
        }
    }

    #[test]
    fn reverse_is_reversed() {
        let (n, _) = chain();
        let fwd = topological_order(&n).unwrap();
        let mut rev = reverse_topological_order(&n).unwrap();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn levels_and_depth_of_chain() {
        let (n, ids) = chain();
        let lv = levels(&n);
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(lv[id.index()], i);
        }
        assert_eq!(depth(&n), 5);
    }

    #[test]
    fn balanced_tree_levels() {
        let mut n = Network::new("tree");
        let leaves: Vec<GateId> = (0..4).map(|i| n.add_input(format!("x{i}"))).collect();
        let l1a = n.add_gate(GateType::And, &[leaves[0], leaves[1]], "l1a").unwrap();
        let l1b = n.add_gate(GateType::And, &[leaves[2], leaves[3]], "l1b").unwrap();
        let root = n.add_gate(GateType::Or, &[l1a, l1b], "root").unwrap();
        n.add_output(root, "f");
        let lv = levels(&n);
        assert_eq!(lv[root.index()], 2);
        assert_eq!(depth(&n), 2);
    }

    #[test]
    fn levels_from_cached_order_match_fresh_levels() {
        let (n, _) = chain();
        let order = topological_order(&n).unwrap();
        assert_eq!(levels_from_order(&n, &order), levels(&n));
    }

    #[test]
    fn cones() {
        let (n, ids) = chain();
        let ti = transitive_fanin(&n, *ids.last().unwrap());
        assert_eq!(ti.len(), ids.len());
        let tf = transitive_fanout(&n, ids[0]);
        assert_eq!(tf.len(), ids.len());
        let mid = transitive_fanin(&n, ids[2]);
        assert_eq!(mid.len(), 3);
    }

    #[test]
    fn skips_tombstoned_gates() {
        let (mut n, ids) = chain();
        // Detach the last inverter from the output and instead use ids[4].
        let last = *ids.last().unwrap();
        n.replace_all_uses(last, ids[4]).unwrap();
        let order = topological_order(&n).unwrap();
        assert!(!order.contains(&last));
        assert_eq!(order.len(), n.live_gate_count());
    }
}
