//! Ergonomic construction of networks by signal name.
//!
//! [`NetworkBuilder`] lets the figure reproductions and the circuit
//! generators describe a network as a list of `(output, type, inputs)`
//! statements without worrying about creation order: references may be
//! forward, and the builder resolves them when [`NetworkBuilder::finish`]
//! is called.

use std::collections::HashMap;

use crate::error::NetlistError;
use crate::gate::{GateId, GateType};
use crate::network::Network;

#[derive(Debug, Clone)]
struct PendingGate {
    name: String,
    gtype: GateType,
    fanin_names: Vec<String>,
}

/// Builds a [`Network`] from named statements, resolving signal names to
/// gate ids at the end so statements may appear in any order.
///
/// ```
/// use rapids_netlist::{GateType, NetworkBuilder};
///
/// let mut b = NetworkBuilder::new("demo");
/// b.input("a");
/// b.input("b");
/// // Forward reference to `n1` is fine.
/// b.gate("f", GateType::Or, &["n1", "b"]);
/// b.gate("n1", GateType::And, &["a", "b"]);
/// b.output("f");
/// let network = b.finish().unwrap();
/// assert_eq!(network.logic_gate_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    name: String,
    inputs: Vec<String>,
    constants: Vec<(String, bool)>,
    gates: Vec<PendingGate>,
    outputs: Vec<String>,
}

impl NetworkBuilder {
    /// Creates a builder for a design called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkBuilder {
            name: name.into(),
            inputs: Vec::new(),
            constants: Vec::new(),
            gates: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Declares a primary input signal.
    pub fn input(&mut self, name: impl Into<String>) -> &mut Self {
        self.inputs.push(name.into());
        self
    }

    /// Declares several primary inputs at once.
    pub fn inputs<I, S>(&mut self, names: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            self.inputs.push(n.into());
        }
        self
    }

    /// Declares a constant signal.
    pub fn constant(&mut self, name: impl Into<String>, value: bool) -> &mut Self {
        self.constants.push((name.into(), value));
        self
    }

    /// Declares a logic gate whose output signal is `name`.
    pub fn gate(&mut self, name: impl Into<String>, gtype: GateType, fanins: &[&str]) -> &mut Self {
        self.gates.push(PendingGate {
            name: name.into(),
            gtype,
            fanin_names: fanins.iter().map(|s| s.to_string()).collect(),
        });
        self
    }

    /// Declares a primary output driven by the signal `name`.
    pub fn output(&mut self, name: impl Into<String>) -> &mut Self {
        self.outputs.push(name.into());
        self
    }

    /// Resolves all names and produces the network.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateName`] if a signal is defined twice.
    /// * [`NetlistError::UndefinedName`] if a fan-in or output references a
    ///   signal that was never defined.
    /// * Any structural error from [`Network::add_gate`] (bad arity, cycles).
    pub fn finish(&self) -> Result<Network, NetlistError> {
        let mut network = Network::new(self.name.clone());
        let mut by_name: HashMap<String, GateId> = HashMap::new();

        for name in &self.inputs {
            if by_name.contains_key(name) {
                return Err(NetlistError::DuplicateName(name.clone()));
            }
            let id = network.add_input(name.clone());
            by_name.insert(name.clone(), id);
        }
        for (name, value) in &self.constants {
            if by_name.contains_key(name) {
                return Err(NetlistError::DuplicateName(name.clone()));
            }
            let id = network.add_constant(*value, name.clone());
            by_name.insert(name.clone(), id);
        }
        // Gate names may collide neither with input/constant names nor with
        // each other.
        {
            let mut seen = std::collections::HashSet::new();
            for g in &self.gates {
                if by_name.contains_key(&g.name) || !seen.insert(&g.name) {
                    return Err(NetlistError::DuplicateName(g.name.clone()));
                }
            }
        }

        // Topologically order the pending gates by resolving dependencies
        // iteratively; this permits forward references.
        let mut remaining: Vec<&PendingGate> = self.gates.iter().collect();
        while !remaining.is_empty() {
            let mut progressed = false;
            let mut next_round = Vec::new();
            for g in remaining {
                let ready = g.fanin_names.iter().all(|n| by_name.contains_key(n));
                if ready {
                    let fanins: Vec<GateId> = g.fanin_names.iter().map(|n| by_name[n]).collect();
                    let id = network.add_gate(g.gtype, &fanins, g.name.clone())?;
                    by_name.insert(g.name.clone(), id);
                    progressed = true;
                } else {
                    next_round.push(g);
                }
            }
            if !progressed {
                // Some fan-in name is genuinely undefined (or the statements
                // form a cycle, which a combinational builder cannot express).
                let missing = next_round
                    .iter()
                    .flat_map(|g| g.fanin_names.iter())
                    .find(|n| {
                        !by_name.contains_key(*n) && !next_round.iter().any(|g| &g.name == *n)
                    })
                    .cloned()
                    .unwrap_or_else(|| next_round[0].fanin_names[0].clone());
                return Err(NetlistError::UndefinedName(missing));
            }
            remaining = next_round;
        }

        for name in &self.outputs {
            let id = by_name
                .get(name)
                .copied()
                .ok_or_else(|| NetlistError::UndefinedName(name.clone()))?;
            network.add_output(id, name.clone());
        }
        Ok(network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_references_resolve() {
        let mut b = NetworkBuilder::new("t");
        b.inputs(["a", "b", "c"]);
        b.gate("f", GateType::Or, &["n1", "c"]);
        b.gate("n1", GateType::And, &["a", "b"]);
        b.output("f");
        let n = b.finish().unwrap();
        assert_eq!(n.logic_gate_count(), 2);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = NetworkBuilder::new("t");
        b.input("a");
        b.input("a");
        assert!(matches!(b.finish(), Err(NetlistError::DuplicateName(_))));

        let mut b = NetworkBuilder::new("t");
        b.input("a");
        b.gate("x", GateType::Inv, &["a"]);
        b.gate("x", GateType::Buf, &["a"]);
        assert!(matches!(b.finish(), Err(NetlistError::DuplicateName(_))));
    }

    #[test]
    fn undefined_names_rejected() {
        let mut b = NetworkBuilder::new("t");
        b.input("a");
        b.gate("f", GateType::And, &["a", "ghost"]);
        b.output("f");
        assert!(matches!(b.finish(), Err(NetlistError::UndefinedName(_))));

        let mut b = NetworkBuilder::new("t");
        b.input("a");
        b.output("ghost");
        assert!(matches!(b.finish(), Err(NetlistError::UndefinedName(_))));
    }

    #[test]
    fn constants_supported() {
        let mut b = NetworkBuilder::new("t");
        b.input("a");
        b.constant("one", true);
        b.gate("f", GateType::And, &["a", "one"]);
        b.output("f");
        let n = b.finish().unwrap();
        assert_eq!(n.logic_gate_count(), 1);
    }

    #[test]
    fn bad_arity_propagates() {
        let mut b = NetworkBuilder::new("t");
        b.input("a");
        b.gate("f", GateType::And, &["a"]);
        b.output("f");
        assert!(matches!(b.finish(), Err(NetlistError::InvalidFaninCount { .. })));
    }
}
