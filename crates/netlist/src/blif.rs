//! A small BLIF-like structural text format.
//!
//! The paper's flow reads SIS-mapped BLIF netlists.  For portability this
//! crate defines a compact structural dialect that captures exactly what the
//! rewiring engine needs (typed gates, no truth tables):
//!
//! ```text
//! .model adder4
//! .inputs a0 a1 b0 b1
//! .outputs s0 s1
//! .gate xor s0 a0 b0
//! .gate and c0 a0 b0
//! .gate xor s1 a1 b1 c0
//! .end
//! ```
//!
//! Each `.gate` line is `TYPE OUTPUT INPUT...`; the writer emits one line per
//! live logic gate in topological order so files round-trip.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::error::NetlistError;
use crate::gate::{GateId, GateType};
use crate::network::Network;
use crate::topo;

fn io_error(path: &Path, e: std::io::Error) -> NetlistError {
    NetlistError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// Reads and parses a BLIF-like file.
///
/// # Errors
///
/// [`NetlistError::Io`] when the file cannot be read, otherwise whatever
/// [`parse_string`] reports about its contents.  Every error carries the
/// offending path: I/O errors structurally, parse errors as a
/// ``` `path`: ``` message prefix — a batch over hundreds of files must
/// point at the file, not just a line number inside an unnamed one.
pub fn parse_file(path: impl AsRef<Path>) -> Result<Network, NetlistError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|e| io_error(path, e))?;
    parse_string(&text).map_err(|e| match e {
        NetlistError::ParseBlif { line, message } => {
            NetlistError::ParseBlif { line, message: format!("`{}`: {message}", path.display()) }
        }
        other => other,
    })
}

/// Serializes a network with [`write_string`] and writes it to `path`.
///
/// # Errors
///
/// [`NetlistError::Io`] when the file cannot be written.
pub fn write_file(network: &Network, path: impl AsRef<Path>) -> Result<(), NetlistError> {
    let path = path.as_ref();
    std::fs::write(path, write_string(network)).map_err(|e| io_error(path, e))
}

/// Recursively discovers every `*.blif` file under `root`, in a
/// deterministic order (lexicographic by full path), so a directory of
/// benchmarks always enumerates — and therefore schedules and reports —
/// identically.  This is the shared loader behind `table1 --blif-dir` and
/// the serve layer's directory ingestion.
///
/// # Errors
///
/// [`NetlistError::Io`] on the first unreadable directory entry.  Files
/// are only *discovered* here; parse them with [`parse_file`] (a bad file
/// is the reader's problem, not the walk's).
pub fn discover_files(root: impl AsRef<Path>) -> Result<Vec<std::path::PathBuf>, NetlistError> {
    fn walk(dir: &Path, found: &mut Vec<std::path::PathBuf>) -> Result<(), NetlistError> {
        let entries = std::fs::read_dir(dir).map_err(|e| io_error(dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_error(dir, e))?;
            let path = entry.path();
            let ftype = entry.file_type().map_err(|e| io_error(&path, e))?;
            if ftype.is_dir() {
                walk(&path, found)?;
            } else if path.extension().is_some_and(|ext| ext == "blif") {
                found.push(path);
            }
        }
        Ok(())
    }
    let mut found = Vec::new();
    walk(root.as_ref(), &mut found)?;
    found.sort_by(|a, b| a.as_os_str().cmp(b.as_os_str()));
    Ok(found)
}

/// Serializes a network to the structural BLIF-like dialect.
///
/// Tomb-stoned gates are skipped; gates are emitted in topological order so
/// the reader never sees a forward reference.
pub fn write_string(network: &Network) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", network.name());
    let input_names: Vec<&str> =
        network.inputs().iter().map(|&i| network.gate(i).name.as_str()).collect();
    let _ = writeln!(out, ".inputs {}", input_names.join(" "));
    let output_names: Vec<&str> = network.outputs().iter().map(|o| o.name.as_str()).collect();
    let _ = writeln!(out, ".outputs {}", output_names.join(" "));
    let order = topo::topological_order(network).expect("cannot serialize a cyclic network");
    for g in order {
        let gate = network.gate(g);
        match gate.gtype {
            GateType::Input => {}
            GateType::Const0 | GateType::Const1 => {
                let _ = writeln!(out, ".gate {} {}", gate.gtype.mnemonic(), gate.name);
            }
            t => {
                let fanin_names: Vec<&str> =
                    gate.fanins.iter().map(|&f| network.gate(f).name.as_str()).collect();
                let _ =
                    writeln!(out, ".gate {} {} {}", t.mnemonic(), gate.name, fanin_names.join(" "));
            }
        }
    }
    // Output ports whose name differs from their driver need explicit buffers
    // on read-back; emit them as .link lines.
    for o in network.outputs() {
        let driver_name = &network.gate(o.driver).name;
        if driver_name != &o.name {
            let _ = writeln!(out, ".link {} {}", o.name, driver_name);
        }
    }
    let _ = writeln!(out, ".end");
    out
}

/// Parses the structural BLIF-like dialect produced by [`write_string`].
///
/// # Errors
///
/// Returns [`NetlistError::ParseBlif`] with a line number for syntactic
/// problems, and name/structural errors for semantic ones.
pub fn parse_string(text: &str) -> Result<Network, NetlistError> {
    let mut name = String::from("unnamed");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut gates: Vec<(usize, GateType, String, Vec<String>)> = Vec::new();
    let mut links: Vec<(String, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lineno = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().unwrap();
        match keyword {
            ".model" => {
                name = tokens
                    .next()
                    .ok_or(NetlistError::ParseBlif {
                        line: lineno,
                        message: "missing model name".into(),
                    })?
                    .to_string();
            }
            ".inputs" => inputs.extend(tokens.map(|s| s.to_string())),
            ".outputs" => outputs.extend(tokens.map(|s| s.to_string())),
            ".gate" => {
                let type_token = tokens.next().ok_or(NetlistError::ParseBlif {
                    line: lineno,
                    message: "missing gate type".into(),
                })?;
                let gtype = GateType::from_mnemonic(type_token).ok_or(NetlistError::ParseBlif {
                    line: lineno,
                    message: format!("unknown gate type `{type_token}`"),
                })?;
                let out = tokens
                    .next()
                    .ok_or(NetlistError::ParseBlif {
                        line: lineno,
                        message: "missing gate output name".into(),
                    })?
                    .to_string();
                let fanins: Vec<String> = tokens.map(|s| s.to_string()).collect();
                gates.push((lineno, gtype, out, fanins));
            }
            ".link" => {
                let port = tokens.next().ok_or(NetlistError::ParseBlif {
                    line: lineno,
                    message: "missing link port".into(),
                })?;
                let driver = tokens.next().ok_or(NetlistError::ParseBlif {
                    line: lineno,
                    message: "missing link driver".into(),
                })?;
                links.push((port.to_string(), driver.to_string()));
            }
            ".end" => break,
            other => {
                return Err(NetlistError::ParseBlif {
                    line: lineno,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }

    let mut network = Network::new(name);
    let mut by_name: HashMap<String, GateId> = HashMap::new();
    for i in &inputs {
        if by_name.contains_key(i) {
            return Err(NetlistError::DuplicateName(i.clone()));
        }
        let id = network.add_input(i.clone());
        by_name.insert(i.clone(), id);
    }

    // Gates may reference signals defined later; resolve iteratively.
    let mut remaining = gates;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut next = Vec::new();
        for (lineno, gtype, out, fanin_names) in remaining {
            if by_name.contains_key(&out) {
                return Err(NetlistError::DuplicateName(out));
            }
            let ready = fanin_names.iter().all(|n| by_name.contains_key(n));
            if !ready {
                next.push((lineno, gtype, out, fanin_names));
                continue;
            }
            let id = match gtype {
                GateType::Const0 => network.add_constant(false, out.clone()),
                GateType::Const1 => network.add_constant(true, out.clone()),
                t => {
                    let fanins: Vec<GateId> = fanin_names.iter().map(|n| by_name[n]).collect();
                    network.add_gate(t, &fanins, out.clone())?
                }
            };
            by_name.insert(out, id);
        }
        if next.len() == before {
            let missing = next
                .iter()
                .flat_map(|(_, _, _, f)| f.iter())
                .find(|n| !by_name.contains_key(*n) && !next.iter().any(|(_, _, o, _)| o == *n))
                .cloned()
                .unwrap_or_else(|| next[0].3[0].clone());
            return Err(NetlistError::UndefinedName(missing));
        }
        remaining = next;
    }

    let link_map: HashMap<String, String> = links.into_iter().collect();
    for o in outputs {
        let source = link_map.get(&o).unwrap_or(&o);
        let id = by_name
            .get(source)
            .copied()
            .ok_or_else(|| NetlistError::UndefinedName(source.clone()))?;
        network.add_output(id, o);
    }
    Ok(network)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use crate::gate::GateType;

    fn sample() -> Network {
        let mut b = NetworkBuilder::new("adder1");
        b.inputs(["a", "b", "cin"]);
        b.gate("s_ab", GateType::Xor, &["a", "b"]);
        b.gate("sum", GateType::Xor, &["s_ab", "cin"]);
        b.gate("c1", GateType::And, &["a", "b"]);
        b.gate("c2", GateType::And, &["s_ab", "cin"]);
        b.gate("cout", GateType::Or, &["c1", "c2"]);
        b.output("sum");
        b.output("cout");
        b.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let n = sample();
        let text = write_string(&n);
        let back = parse_string(&text).unwrap();
        assert_eq!(back.name(), "adder1");
        assert_eq!(back.logic_gate_count(), n.logic_gate_count());
        assert_eq!(back.inputs().len(), n.inputs().len());
        assert_eq!(back.outputs().len(), n.outputs().len());
        assert!(back.check_consistency().is_ok());
    }

    /// The per-gate shape of a network, keyed by instance name: gate type
    /// plus the ordered fan-in driver names.  Two networks with equal
    /// signatures and equal output ports are isomorphic (names are unique,
    /// so the name map *is* the vertex bijection).
    fn signature(n: &Network) -> std::collections::BTreeMap<String, (String, Vec<String>)> {
        n.iter_live()
            .map(|id| {
                let gate = n.gate(id);
                let fanin_names: Vec<String> =
                    gate.fanins.iter().map(|&f| n.gate(f).name.clone()).collect();
                (gate.name.clone(), (format!("{:?}", gate.gtype), fanin_names))
            })
            .collect()
    }

    #[test]
    fn round_trip_is_isomorphic() {
        let n = sample();
        let back = parse_string(&write_string(&n)).unwrap();

        assert_eq!(signature(&n), signature(&back));

        let ports = |net: &Network| -> Vec<(String, String)> {
            net.outputs()
                .iter()
                .map(|p| (p.name.clone(), net.gate(p.driver).name.clone()))
                .collect()
        };
        assert_eq!(ports(&n), ports(&back));

        let input_names = |net: &Network| -> Vec<String> {
            net.inputs().iter().map(|&i| net.gate(i).name.clone()).collect()
        };
        assert_eq!(input_names(&n), input_names(&back));
    }

    #[test]
    fn round_trip_is_a_fixpoint() {
        // write(parse(write(n))) must reproduce the text byte for byte —
        // a stronger (and cheaper to debug) form of the isomorphism check.
        let first = write_string(&sample());
        let second = write_string(&parse_string(&first).unwrap());
        assert_eq!(first, second);
    }

    #[test]
    fn parse_rejects_unknown_type() {
        let text = ".model x\n.inputs a\n.outputs f\n.gate frob f a\n.end\n";
        let err = parse_string(text).unwrap_err();
        assert!(matches!(err, NetlistError::ParseBlif { line: 4, .. }));
    }

    #[test]
    fn parse_rejects_undefined_signal() {
        let text = ".model x\n.inputs a\n.outputs f\n.gate and f a ghost\n.end\n";
        let err = parse_string(text).unwrap_err();
        assert!(matches!(err, NetlistError::UndefinedName(_)));
    }

    #[test]
    fn parse_rejects_duplicate_definition() {
        let text = ".model x\n.inputs a b\n.outputs f\n.gate and f a b\n.gate or f a b\n.end\n";
        let err = parse_string(text).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateName(_)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# a comment\n\n.model x\n.inputs a b\n.outputs f\n.gate nand f a b\n.end\n";
        let n = parse_string(text).unwrap();
        assert_eq!(n.logic_gate_count(), 1);
        assert_eq!(n.gate(n.find_by_name("f").unwrap()).gtype, GateType::Nand);
    }

    #[test]
    fn out_of_order_gates_resolve() {
        let text = ".model x\n.inputs a b c\n.outputs f\n.gate or f n1 c\n.gate and n1 a b\n.end\n";
        let n = parse_string(text).unwrap();
        assert_eq!(n.logic_gate_count(), 2);
        assert!(n.check_consistency().is_ok());
    }

    #[test]
    fn file_round_trip_and_io_errors() {
        let n = sample();
        let dir = std::env::temp_dir().join(format!("rapids_blif_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("adder1.blif");
        write_file(&n, &path).unwrap();
        let back = parse_file(&path).unwrap();
        assert_eq!(signature(&n), signature(&back));
        std::fs::remove_dir_all(&dir).unwrap();

        let missing = dir.join("nope.blif");
        assert!(matches!(parse_file(&missing).unwrap_err(), NetlistError::Io { .. }));
        assert!(matches!(write_file(&n, &missing).unwrap_err(), NetlistError::Io { .. }));
    }

    /// Every `parse_file` failure must point at the offending file: I/O
    /// errors carry the path structurally, parse errors carry it as a
    /// message prefix.
    #[test]
    fn parse_file_errors_carry_the_path() {
        let dir = std::env::temp_dir().join(format!("rapids_blif_patherr_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        // An unreadable "file": a directory path fails `read_to_string`
        // with a real I/O error even for root, unlike permission bits.
        let err = parse_file(&dir).unwrap_err();
        match &err {
            NetlistError::Io { path, .. } => assert_eq!(path, &dir.display().to_string()),
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(err.to_string().contains(&dir.display().to_string()));

        // A present-but-malformed file: the parse error names it too.
        let bad = dir.join("garbage.blif");
        std::fs::write(&bad, "this is not blif\n").unwrap();
        let err = parse_file(&bad).unwrap_err();
        assert!(matches!(err, NetlistError::ParseBlif { .. }));
        assert!(err.to_string().contains("garbage.blif"), "parse error must carry the path: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Seeded property loop: random DAGs with tomb-stoned interior and
    /// trailing slots (the shape of a post-ES grown-then-rolled-back
    /// network) must survive write→parse with identical structure, and the
    /// serialized text must be a fixpoint.
    #[test]
    fn tombstoned_networks_round_trip() {
        for seed in 0..24u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
            let mut next = move |bound: usize| {
                // xorshift64*, reduced; plenty for case generation.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 32) as usize % bound.max(1)
            };
            let mut n = Network::new(format!("tomb{seed}"));
            let mut live: Vec<GateId> = Vec::new();
            for i in 0..3 + next(4) {
                live.push(n.add_input(format!("in{i}")));
            }
            let mut doomed: Vec<GateId> = Vec::new();
            for i in 0..8 + next(24) {
                let two = [GateType::And, GateType::Or, GateType::Nand, GateType::Xor];
                let a = live[next(live.len())];
                let b = live[next(live.len())];
                let id = if next(5) == 0 {
                    n.add_gate(GateType::Inv, &[a], format!("g{i}")).unwrap()
                } else {
                    n.add_gate(two[next(two.len())], &[a, b], format!("g{i}")).unwrap()
                };
                // A third of the gates are built to die: nothing ever reads
                // them, and they are removed below to tomb-stone their slots
                // (interior ones once later gates exist, plus trailing ones).
                if next(3) == 0 {
                    doomed.push(id);
                } else {
                    live.push(id);
                }
            }
            if doomed.is_empty() {
                let a = live[next(live.len())];
                doomed.push(n.add_gate(GateType::Inv, &[a], "g_doomed").unwrap());
            }
            for (i, &g) in live.iter().enumerate() {
                if !matches!(n.gate(g).gtype, GateType::Input)
                    && (n.is_fanout_free(g) || i % 7 == 0)
                {
                    n.add_output(g, format!("out_{}", n.gate(g).name.clone()));
                }
            }
            for g in doomed {
                assert!(n.remove_if_dangling(g), "doomed gate had readers");
            }
            assert!(n.live_gate_count() < n.gate_count(), "no tombstones made");
            assert!(n.check_consistency().is_ok());

            let text = write_string(&n);
            let back = parse_string(&text).unwrap();
            assert_eq!(signature(&n), signature(&back), "seed {seed}");
            assert_eq!(text, write_string(&back), "seed {seed} not a fixpoint");
        }
    }

    #[test]
    fn constants_round_trip() {
        let mut b = NetworkBuilder::new("c");
        b.input("a");
        b.constant("tie1", true);
        b.gate("f", GateType::And, &["a", "tie1"]);
        b.output("f");
        let n = b.finish().unwrap();
        let text = write_string(&n);
        let back = parse_string(&text).unwrap();
        assert_eq!(back.live_gate_count(), n.live_gate_count());
    }
}
