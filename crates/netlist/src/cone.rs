//! Fanout-free region and cone extraction.
//!
//! The theory of §3 is stated for *fanout-free networks* rooted at a gate
//! `f`: every gate inside the region has a single fan-out.  The functions
//! here carve those regions out of a general (multi-fanout) network, which is
//! exactly how the GISG extraction bounds its traversal, and also extract
//! input supports for exhaustive verification of small cones.

use std::collections::HashMap;

use crate::gate::{GateId, GateType};
use crate::network::Network;
use crate::topo;

/// A single-rooted cone of a network, described by its member gates and the
/// boundary signals feeding it (the cone "leaves").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cone {
    /// Root gate of the cone.
    pub root: GateId,
    /// Gates strictly inside the cone (includes the root, excludes leaves).
    pub members: Vec<GateId>,
    /// Boundary drivers: gates outside the cone whose outputs feed cone pins.
    pub leaves: Vec<GateId>,
}

impl Cone {
    /// Number of member gates.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the given gate is a member of the cone.
    pub fn contains(&self, id: GateId) -> bool {
        self.members.contains(&id)
    }
}

/// Extracts the *maximum fanout-free cone* (MFFC-like region restricted to
/// single-fanout gates) rooted at `root`: the traversal descends through a
/// fan-in only while that fan-in is fanout-free, is not a source, and — when
/// `stop_at_multi_input_boundary` is false — regardless of its type.
///
/// This is the region within which Theorem 1 applies directly.
pub fn fanout_free_cone(network: &Network, root: GateId) -> Cone {
    let mut members = vec![root];
    let mut leaves = Vec::new();
    let mut seen_leaves = Vec::new();
    let mut stack = vec![root];
    let mut in_cone = vec![false; network.gate_count()];
    in_cone[root.index()] = true;
    while let Some(g) = stack.pop() {
        for &f in network.fanins(g) {
            let fg = network.gate(f);
            let descend = !fg.gtype.is_source() && network.is_fanout_free(f);
            if descend {
                if !in_cone[f.index()] {
                    in_cone[f.index()] = true;
                    members.push(f);
                    stack.push(f);
                }
            } else if !seen_leaves.contains(&f) {
                seen_leaves.push(f);
                leaves.push(f);
            }
        }
    }
    Cone { root, members, leaves }
}

/// Extracts the full transitive fan-in cone of `root` down to primary inputs
/// and constants; leaves are the inputs/constants of the support.
pub fn input_cone(network: &Network, root: GateId) -> Cone {
    let all = topo::transitive_fanin(network, root);
    let mut members = Vec::new();
    let mut leaves = Vec::new();
    for g in all {
        if network.gate(g).gtype.is_source() {
            leaves.push(g);
        } else {
            members.push(g);
        }
    }
    Cone { root, members, leaves }
}

/// The support (set of primary inputs / constants) of a gate.
pub fn support(network: &Network, root: GateId) -> Vec<GateId> {
    input_cone(network, root).leaves
}

/// Evaluates the output of `root` for a full assignment of its support,
/// given as a map from leaf gate to boolean value.  Intended for exhaustive
/// equivalence checks of small cones in tests; general simulation lives in
/// `rapids-sim`.
///
/// # Panics
///
/// Panics if a leaf value is missing from `assignment` or the cone is cyclic.
pub fn evaluate_cone(network: &Network, root: GateId, assignment: &HashMap<GateId, bool>) -> bool {
    let cone_gates = topo::transitive_fanin(network, root);
    let order = topo::topological_order(network).expect("acyclic network required");
    let mut value: HashMap<GateId, bool> = HashMap::new();
    for g in order {
        if !cone_gates.contains(&g) {
            continue;
        }
        let gate = network.gate(g);
        let v = match gate.gtype {
            GateType::Input => {
                *assignment.get(&g).unwrap_or_else(|| panic!("missing assignment for input {g}"))
            }
            GateType::Const0 => false,
            GateType::Const1 => true,
            t => {
                let ins: Vec<bool> = gate.fanins.iter().map(|f| value[f]).collect();
                t.eval_bool(&ins)
            }
        };
        value.insert(g, v);
    }
    value[&root]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateType;

    /// Builds the supergate of Fig. 2: f = AND(h, AND(k, m)) shaped so that
    /// everything is fanout-free under f.
    fn fig2_like() -> (Network, GateId, GateId, GateId, GateId) {
        let mut n = Network::new("fig2");
        let h = n.add_input("h");
        let k = n.add_input("k");
        let m = n.add_input("m");
        let g1 = n.add_gate(GateType::And, &[k, m], "g1").unwrap();
        let f = n.add_gate(GateType::And, &[h, g1], "f").unwrap();
        n.add_output(f, "f");
        (n, h, k, g1, f)
    }

    #[test]
    fn fanout_free_cone_descends_single_fanout() {
        let (n, _h, _k, g1, f) = fig2_like();
        let cone = fanout_free_cone(&n, f);
        assert!(cone.contains(f));
        assert!(cone.contains(g1));
        assert_eq!(cone.size(), 2);
        // Leaves are the three inputs.
        assert_eq!(cone.leaves.len(), 3);
    }

    #[test]
    fn fanout_free_cone_stops_at_multifanout() {
        let mut n = Network::new("mf");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let shared = n.add_gate(GateType::And, &[a, b], "shared").unwrap();
        let x = n.add_gate(GateType::Inv, &[shared], "x").unwrap();
        let y = n.add_gate(GateType::Buf, &[shared], "y").unwrap();
        let f = n.add_gate(GateType::Or, &[x, y], "f").unwrap();
        n.add_output(f, "f");
        let cone = fanout_free_cone(&n, f);
        // shared has two fanouts so the cone must stop above it.
        assert!(cone.contains(x));
        assert!(cone.contains(y));
        assert!(!cone.contains(shared));
        assert!(cone.leaves.contains(&shared));
    }

    #[test]
    fn input_cone_and_support() {
        let (n, h, k, _g1, f) = fig2_like();
        let cone = input_cone(&n, f);
        assert_eq!(cone.members.len(), 2);
        assert_eq!(cone.leaves.len(), 3);
        let sup = support(&n, f);
        assert!(sup.contains(&h));
        assert!(sup.contains(&k));
    }

    #[test]
    fn evaluate_cone_truth_table() {
        let (n, h, k, _g1, f) = fig2_like();
        let m = n.find_by_name("m").unwrap();
        let mut assignment = HashMap::new();
        for hv in [false, true] {
            for kv in [false, true] {
                for mv in [false, true] {
                    assignment.insert(h, hv);
                    assignment.insert(k, kv);
                    assignment.insert(m, mv);
                    let got = evaluate_cone(&n, f, &assignment);
                    assert_eq!(got, hv && kv && mv);
                }
            }
        }
    }
}
