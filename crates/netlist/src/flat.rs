//! Flat (CSR-style) adjacency export of a [`Network`].
//!
//! The network's native adjacency is pointer-shaped — each gate owns a
//! `Vec<GateId>` of fan-ins and the network keeps a `Vec<Vec<GateId>>` of
//! fan-outs — which is the right structure for editing but a poor one for
//! batched sweeps: every edge visit chases a separate heap allocation.
//! [`FlatAdjacency`] snapshots both directions into four flat `u32` arrays
//! (offsets + edges, the classic compressed-sparse-row layout), so a full
//! traversal touches two contiguous slabs of memory and nothing else.
//!
//! The snapshot preserves the orders that downstream folds depend on: a
//! gate's fan-in edges appear in **pin order** and its fan-out edges in the
//! network's **fan-out list order** (one entry per driven pin).  Tomb-stoned
//! slots are present but empty, so edge slices can be indexed directly by
//! `GateId::index()` without a liveness check.
//!
//! A `FlatAdjacency` is a point-in-time view: any edit that changes
//! connectivity (pin swaps, inverter insertion, gate removal) invalidates
//! it.  Consumers that cache one across edits must rebuild it under the same
//! rules they use for cached topological orders — see
//! `rapids_timing::levelized` for the canonical lifecycle.

use crate::gate::GateId;
use crate::network::Network;

/// CSR-style snapshot of the fan-in and fan-out adjacency of a network.
#[derive(Debug, Clone, Default)]
pub struct FlatAdjacency {
    /// `fanin_offsets[s]..fanin_offsets[s + 1]` indexes the fan-in edges of
    /// slot `s` in `fanin_edges`; length `slots + 1`.
    fanin_offsets: Vec<u32>,
    /// Fan-in edge targets (driver slots), in pin order per gate.
    fanin_edges: Vec<u32>,
    /// Fan-out counterpart of `fanin_offsets`; length `slots + 1`.
    fanout_offsets: Vec<u32>,
    /// Fan-out edge targets (sink slots), one per driven pin, in the
    /// network's fan-out list order.
    fanout_edges: Vec<u32>,
}

impl FlatAdjacency {
    /// Snapshots the adjacency of `network`.  Tomb-stoned slots get empty
    /// edge ranges in both directions.
    pub fn build(network: &Network) -> Self {
        let slots = network.gate_count();
        let mut fanin_offsets = Vec::with_capacity(slots + 1);
        let mut fanout_offsets = Vec::with_capacity(slots + 1);
        let mut fanin_edges = Vec::new();
        let mut fanout_edges = Vec::new();
        fanin_offsets.push(0);
        fanout_offsets.push(0);
        for slot in 0..slots {
            let id = GateId(slot as u32);
            if network.is_live(id) {
                fanin_edges.extend(network.fanins(id).iter().map(|f| f.0));
                fanout_edges.extend(network.fanouts(id).iter().map(|s| s.0));
            }
            fanin_offsets.push(fanin_edges.len() as u32);
            fanout_offsets.push(fanout_edges.len() as u32);
        }
        FlatAdjacency { fanin_offsets, fanin_edges, fanout_offsets, fanout_edges }
    }

    /// Number of gate slots covered by the snapshot.
    pub fn slots(&self) -> usize {
        self.fanin_offsets.len().saturating_sub(1)
    }

    /// Total number of fan-in edges (equals the total fan-out edge count).
    pub fn fanin_edge_count(&self) -> usize {
        self.fanin_edges.len()
    }

    /// Total number of fan-out edges.
    pub fn fanout_edge_count(&self) -> usize {
        self.fanout_edges.len()
    }

    /// Index range of `slot`'s fan-in edges (usable against parallel
    /// per-edge arrays).
    pub fn fanin_range(&self, slot: usize) -> std::ops::Range<usize> {
        self.fanin_offsets[slot] as usize..self.fanin_offsets[slot + 1] as usize
    }

    /// Index range of `slot`'s fan-out edges.
    pub fn fanout_range(&self, slot: usize) -> std::ops::Range<usize> {
        self.fanout_offsets[slot] as usize..self.fanout_offsets[slot + 1] as usize
    }

    /// Driver slots of `slot`'s input pins, in pin order.
    pub fn fanins_of(&self, slot: usize) -> &[u32] {
        &self.fanin_edges[self.fanin_range(slot)]
    }

    /// Sink slots driven by `slot`, one per driven pin.
    pub fn fanouts_of(&self, slot: usize) -> &[u32] {
        &self.fanout_edges[self.fanout_range(slot)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::GateType;

    fn sample() -> Network {
        let mut n = Network::new("flat");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let g1 = n.add_gate(GateType::Nand, &[a, b], "g1").unwrap();
        let g2 = n.add_gate(GateType::Nor, &[g1, b], "g2").unwrap();
        n.add_gate(GateType::Xor, &[a, a], "g3").unwrap();
        n.add_output(g2, "f");
        n
    }

    #[test]
    fn mirrors_network_adjacency_in_order() {
        let n = sample();
        let flat = FlatAdjacency::build(&n);
        assert_eq!(flat.slots(), n.gate_count());
        assert_eq!(flat.fanin_edge_count(), flat.fanout_edge_count());
        for g in n.iter_live() {
            let fanins: Vec<u32> = n.fanins(g).iter().map(|f| f.0).collect();
            let fanouts: Vec<u32> = n.fanouts(g).iter().map(|s| s.0).collect();
            assert_eq!(flat.fanins_of(g.index()), fanins.as_slice(), "fanin order at {g}");
            assert_eq!(flat.fanouts_of(g.index()), fanouts.as_slice(), "fanout order at {g}");
        }
    }

    #[test]
    fn multi_pin_sink_appears_once_per_pin() {
        let n = sample();
        let flat = FlatAdjacency::build(&n);
        let a = n.find_by_name("a").unwrap();
        let g3 = n.find_by_name("g3").unwrap();
        // g3 = Xor(a, a): two fan-in pins on the same driver, and two
        // fan-out entries of `a` pointing at g3.
        assert_eq!(flat.fanins_of(g3.index()), &[a.0, a.0]);
        let hits = flat.fanouts_of(a.index()).iter().filter(|&&s| s == g3.0).count();
        assert_eq!(hits, 2);
    }

    #[test]
    fn tombstoned_slots_are_empty() {
        let mut n = sample();
        let g3 = n.find_by_name("g3").unwrap();
        assert!(n.remove_if_dangling(g3));
        let flat = FlatAdjacency::build(&n);
        assert!(flat.fanins_of(g3.index()).is_empty());
        assert!(flat.fanouts_of(g3.index()).is_empty());
        // The live part of the snapshot is unaffected.
        let g2 = n.find_by_name("g2").unwrap();
        assert_eq!(flat.fanins_of(g2.index()).len(), 2);
    }
}
