//! Error type shared by all fallible netlist operations.

use std::fmt;

use crate::gate::GateId;

/// Errors produced while constructing or editing a [`crate::Network`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate id referenced a vertex that does not exist in the network.
    UnknownGate(GateId),
    /// A gate was created with a fan-in count its type cannot accept
    /// (e.g. a 3-input inverter, or a 1-input AND).
    InvalidFaninCount {
        /// The offending gate type.
        gate_type: &'static str,
        /// The number of fan-ins that was requested.
        requested: usize,
    },
    /// A fan-in pin index was out of range for the gate it addresses.
    InvalidPinIndex {
        /// Gate whose pin was addressed.
        gate: GateId,
        /// Requested pin index.
        index: usize,
        /// Number of in-pins the gate actually has.
        fanin_count: usize,
    },
    /// An edit would have created a combinational cycle.
    WouldCreateCycle {
        /// Gate whose fan-in was being rewired.
        gate: GateId,
        /// Driver that would have closed the cycle.
        driver: GateId,
    },
    /// A name appeared twice where uniqueness is required (BLIF parsing).
    DuplicateName(String),
    /// A signal name was referenced before being defined (BLIF parsing).
    UndefinedName(String),
    /// A syntactic problem in a BLIF-like source file.
    ParseBlif {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Reading or writing a netlist file failed.
    ///
    /// Carries the path and the rendered `std::io::Error` (the raw error is
    /// neither `Clone` nor `PartialEq`, which this enum promises).
    Io {
        /// Path of the file the operation failed on.
        path: String,
        /// Rendered I/O error message.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UnknownGate(id) => write!(f, "unknown gate id {id}"),
            NetlistError::InvalidFaninCount { gate_type, requested } => {
                write!(f, "gate type {gate_type} cannot take {requested} fan-ins")
            }
            NetlistError::InvalidPinIndex { gate, index, fanin_count } => write!(
                f,
                "pin index {index} out of range for gate {gate} with {fanin_count} fan-ins"
            ),
            NetlistError::WouldCreateCycle { gate, driver } => write!(
                f,
                "connecting driver {driver} to gate {gate} would create a combinational cycle"
            ),
            NetlistError::DuplicateName(name) => write!(f, "duplicate signal name `{name}`"),
            NetlistError::UndefinedName(name) => write!(f, "undefined signal name `{name}`"),
            NetlistError::ParseBlif { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            NetlistError::Io { path, message } => {
                write!(f, "i/o error on `{path}`: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errors = [
            NetlistError::UnknownGate(GateId(7)),
            NetlistError::InvalidFaninCount { gate_type: "Inv", requested: 3 },
            NetlistError::InvalidPinIndex { gate: GateId(1), index: 9, fanin_count: 2 },
            NetlistError::WouldCreateCycle { gate: GateId(1), driver: GateId(2) },
            NetlistError::DuplicateName("x".into()),
            NetlistError::UndefinedName("y".into()),
            NetlistError::ParseBlif { line: 3, message: "bad token".into() },
            NetlistError::Io { path: "/no/such".into(), message: "denied".into() },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("gate"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
