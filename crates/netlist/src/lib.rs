//! # rapids-netlist
//!
//! Gate-level Boolean network substrate for the RAPIDS rewiring engine
//! (reproduction of *"Fast Post-placement Rewiring Using Easily Detectable
//! Functional Symmetries"*, DAC 2000).
//!
//! A [`Network`] is a directed acyclic graph whose vertices are logic gates
//! drawn from the mapped-library type set used by the paper
//! (`AND/OR/XOR/NAND/NOR/XNOR/INV/BUF`) plus primary inputs and constants.
//! Edges correspond to interconnect: each gate records its fan-in drivers and
//! the network maintains the reverse (fan-out) adjacency incrementally so that
//! rewiring moves stay cheap.
//!
//! The crate also provides:
//!
//! * topological ordering, levelization and fanout-free-region queries
//!   ([`topo`], [`cone`]),
//! * a small BLIF-like text format for examples and round-tripping ([`blif`]),
//! * structural statistics used by the experiment reports ([`stats`]),
//! * an ergonomic [`builder::NetworkBuilder`] for hand-built figures from the
//!   paper and for the circuit generators.
//!
//! ```
//! use rapids_netlist::{GateType, Network};
//!
//! // Build f = (a & b) | c, the classic two-level example.
//! let mut n = Network::new("tiny");
//! let a = n.add_input("a");
//! let b = n.add_input("b");
//! let c = n.add_input("c");
//! let g1 = n.add_gate(GateType::And, &[a, b], "g1").unwrap();
//! let f = n.add_gate(GateType::Or, &[g1, c], "f").unwrap();
//! n.add_output(f, "f");
//! assert_eq!(n.gate_count(), 5);
//! assert_eq!(n.logic_gate_count(), 2);
//! ```

pub mod blif;
pub mod builder;
pub mod cone;
pub mod error;
pub mod flat;
pub mod gate;
pub mod network;
pub mod stats;
pub mod topo;

pub use builder::NetworkBuilder;
pub use error::NetlistError;
pub use flat::FlatAdjacency;
pub use gate::{BaseFunction, Gate, GateId, GateType, Logic, PinRef};
pub use network::Network;
pub use stats::NetworkStats;
