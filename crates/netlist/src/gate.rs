//! Gate types, logic values and the per-vertex record stored in a network.
//!
//! The type system follows §2 of the paper: the theory is developed for
//! `{AND, OR, XOR, INV, BUF}` and the inverted forms `NAND/NOR/XNOR` are
//! treated as the corresponding base type with an output inversion.  Complex
//! cells (AOI/OAI) are expressed by composition of these primitives by the
//! technology mapper, exactly as the paper assumes.

use std::fmt;

/// Identifier of a gate (vertex) inside a [`crate::Network`].
///
/// Ids are dense indices assigned in creation order; they are stable across
/// rewiring edits (gates are tomb-stoned rather than re-indexed when removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub u32);

impl GateId {
    /// Returns the id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GateId {
    fn from(value: u32) -> Self {
        GateId(value)
    }
}

/// Reference to a specific in-pin of a gate: the pair (gate, fan-in index).
///
/// Swappable-pin analysis (§4 of the paper) is expressed in terms of in-pins,
/// so this is the unit the rewiring engine manipulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PinRef {
    /// Gate owning the in-pin.
    pub gate: GateId,
    /// Zero-based fan-in position on that gate.
    pub index: usize,
}

impl PinRef {
    /// Creates a pin reference.
    #[inline]
    pub fn new(gate: GateId, index: usize) -> Self {
        PinRef { gate, index }
    }
}

impl fmt::Display for PinRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.gate, self.index)
    }
}

/// A two-valued logic constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Logic {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
}

impl Logic {
    /// Returns the complementary value.
    #[inline]
    pub fn complement(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
        }
    }

    /// Converts to `bool` (`One` ⇒ `true`).
    #[inline]
    pub fn to_bool(self) -> bool {
        matches!(self, Logic::One)
    }

    /// Converts from `bool` (`true` ⇒ `One`).
    #[inline]
    pub fn from_bool(value: bool) -> Logic {
        if value {
            Logic::One
        } else {
            Logic::Zero
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Logic::Zero => write!(f, "0"),
            Logic::One => write!(f, "1"),
        }
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        self.complement()
    }
}

/// The base Boolean function of a gate, ignoring output inversion.
///
/// `Xor` has no controlling value, which is what makes the and-or-reachable /
/// xor-reachable split of Definition 1 mutually exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseFunction {
    /// AND-like (covers AND and NAND).
    And,
    /// OR-like (covers OR and NOR).
    Or,
    /// XOR-like (covers XOR and XNOR).
    Xor,
    /// Single-input identity (covers BUF and INV).
    Identity,
    /// No fan-ins: a primary input or a constant.
    Source,
}

/// Gate (vertex) types supported by the network.
///
/// `Input` models a primary input; `Const0`/`Const1` model tied-off nets.
/// Everything else is a library logic function.  NAND/NOR/XNOR are the
/// inverted forms of AND/OR/XOR per the paper's §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateType {
    /// Primary input (no fan-ins).
    Input,
    /// Constant logic 0 (no fan-ins).
    Const0,
    /// Constant logic 1 (no fan-ins).
    Const1,
    /// Buffer (1 fan-in).
    Buf,
    /// Inverter (1 fan-in).
    Inv,
    /// AND gate (≥ 2 fan-ins).
    And,
    /// OR gate (≥ 2 fan-ins).
    Or,
    /// XOR gate (≥ 2 fan-ins).
    Xor,
    /// NAND gate (≥ 2 fan-ins).
    Nand,
    /// NOR gate (≥ 2 fan-ins).
    Nor,
    /// XNOR gate (≥ 2 fan-ins).
    Xnor,
}

impl GateType {
    /// All library logic types (excludes `Input`/constants).
    pub const LOGIC_TYPES: [GateType; 8] = [
        GateType::Buf,
        GateType::Inv,
        GateType::And,
        GateType::Or,
        GateType::Xor,
        GateType::Nand,
        GateType::Nor,
        GateType::Xnor,
    ];

    /// Returns the base function of the gate (AND/OR/XOR/identity/source).
    pub fn base_function(self) -> BaseFunction {
        match self {
            GateType::Input | GateType::Const0 | GateType::Const1 => BaseFunction::Source,
            GateType::Buf | GateType::Inv => BaseFunction::Identity,
            GateType::And | GateType::Nand => BaseFunction::And,
            GateType::Or | GateType::Nor => BaseFunction::Or,
            GateType::Xor | GateType::Xnor => BaseFunction::Xor,
        }
    }

    /// Returns `true` if the output of the base function is inverted
    /// (NAND, NOR, XNOR, INV).
    pub fn output_inverted(self) -> bool {
        matches!(self, GateType::Nand | GateType::Nor | GateType::Xnor | GateType::Inv)
    }

    /// Returns the *controlling value* `cv(g)` of the gate, if one exists
    /// (§2 of the paper).  AND/NAND are controlled by 0, OR/NOR by 1;
    /// XOR-family and single-input gates have no controlling value.
    pub fn controlling_value(self) -> Option<Logic> {
        match self.base_function() {
            BaseFunction::And => Some(Logic::Zero),
            BaseFunction::Or => Some(Logic::One),
            _ => None,
        }
    }

    /// Returns the *non-controlling value* `ncv(g)`, if one exists.
    pub fn non_controlling_value(self) -> Option<Logic> {
        self.controlling_value().map(Logic::complement)
    }

    /// Output value when a controlling value is applied at any input,
    /// accounting for output inversion.  `None` for XOR-family gates.
    pub fn controlled_output(self) -> Option<Logic> {
        let cv = self.controlling_value()?;
        // AND outputs 0 when controlled, OR outputs 1; invert for NAND/NOR.
        let out = match self.base_function() {
            BaseFunction::And => Logic::Zero,
            BaseFunction::Or => Logic::One,
            _ => return None,
        };
        let _ = cv;
        Some(if self.output_inverted() { out.complement() } else { out })
    }

    /// Returns `true` for types that carry no fan-in (inputs and constants).
    pub fn is_source(self) -> bool {
        matches!(self, GateType::Input | GateType::Const0 | GateType::Const1)
    }

    /// Returns `true` for single-input pass-through types (BUF/INV).
    pub fn is_identity(self) -> bool {
        matches!(self, GateType::Buf | GateType::Inv)
    }

    /// Returns `true` if the type is in the XOR family (XOR/XNOR).
    pub fn is_xor_family(self) -> bool {
        matches!(self.base_function(), BaseFunction::Xor)
    }

    /// Returns `true` if the type is in the AND/OR family (incl. inverted forms).
    pub fn is_and_or_family(self) -> bool {
        matches!(self.base_function(), BaseFunction::And | BaseFunction::Or)
    }

    /// Permitted fan-in range `(min, max)` for the type; `max = usize::MAX`
    /// means unbounded (the library later restricts to 2–4 inputs).
    pub fn fanin_range(self) -> (usize, usize) {
        match self {
            GateType::Input | GateType::Const0 | GateType::Const1 => (0, 0),
            GateType::Buf | GateType::Inv => (1, 1),
            _ => (2, usize::MAX),
        }
    }

    /// Checks whether `count` fan-ins are acceptable for this type.
    pub fn accepts_fanin_count(self, count: usize) -> bool {
        let (lo, hi) = self.fanin_range();
        count >= lo && count <= hi
    }

    /// Evaluates the gate over plain booleans.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` is not acceptable for the type, or if a source
    /// type other than a constant is evaluated (inputs have no local function).
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        debug_assert!(self.accepts_fanin_count(inputs.len()) || self.is_source());
        match self {
            GateType::Input => panic!("primary inputs have no local function"),
            GateType::Const0 => false,
            GateType::Const1 => true,
            GateType::Buf => inputs[0],
            GateType::Inv => !inputs[0],
            GateType::And => inputs.iter().all(|&b| b),
            GateType::Nand => !inputs.iter().all(|&b| b),
            GateType::Or => inputs.iter().any(|&b| b),
            GateType::Nor => !inputs.iter().any(|&b| b),
            GateType::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateType::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// Evaluates the gate over 64-wide bit-parallel words (one simulation
    /// pattern per bit).  Used by the bit-parallel simulator.
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        match self {
            GateType::Input => panic!("primary inputs have no local function"),
            GateType::Const0 => 0,
            GateType::Const1 => !0,
            GateType::Buf => inputs[0],
            GateType::Inv => !inputs[0],
            GateType::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateType::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateType::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateType::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateType::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateType::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
        }
    }

    /// Returns the inverted-output form of this type (AND ⇄ NAND, OR ⇄ NOR,
    /// XOR ⇄ XNOR, BUF ⇄ INV).  Sources are returned unchanged.
    pub fn inverted_form(self) -> GateType {
        match self {
            GateType::And => GateType::Nand,
            GateType::Nand => GateType::And,
            GateType::Or => GateType::Nor,
            GateType::Nor => GateType::Or,
            GateType::Xor => GateType::Xnor,
            GateType::Xnor => GateType::Xor,
            GateType::Buf => GateType::Inv,
            GateType::Inv => GateType::Buf,
            other => other,
        }
    }

    /// Returns the DeMorgan dual of the *base* function with the same output
    /// inversion (AND ⇄ OR, NAND ⇄ NOR).  XOR-family and unary types are
    /// returned unchanged; the DeMorgan transform of Definition 4 only applies
    /// to AND/OR supergates.
    pub fn demorgan_dual(self) -> GateType {
        match self {
            GateType::And => GateType::Or,
            GateType::Or => GateType::And,
            GateType::Nand => GateType::Nor,
            GateType::Nor => GateType::Nand,
            other => other,
        }
    }

    /// Short lowercase mnemonic used by the BLIF-like text format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateType::Input => "input",
            GateType::Const0 => "const0",
            GateType::Const1 => "const1",
            GateType::Buf => "buf",
            GateType::Inv => "inv",
            GateType::And => "and",
            GateType::Or => "or",
            GateType::Xor => "xor",
            GateType::Nand => "nand",
            GateType::Nor => "nor",
            GateType::Xnor => "xnor",
        }
    }

    /// Parses a mnemonic produced by [`GateType::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<GateType> {
        Some(match s {
            "input" => GateType::Input,
            "const0" => GateType::Const0,
            "const1" => GateType::Const1,
            "buf" => GateType::Buf,
            "inv" | "not" => GateType::Inv,
            "and" => GateType::And,
            "or" => GateType::Or,
            "xor" => GateType::Xor,
            "nand" => GateType::Nand,
            "nor" => GateType::Nor,
            "xnor" => GateType::Xnor,
            _ => return None,
        })
    }
}

impl fmt::Display for GateType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic().to_uppercase())
    }
}

/// A vertex of the Boolean network: type, fan-in drivers, name and the
/// drive-strength class assigned by sizing (0 = smallest of the 4 library
/// implementations mentioned in §6 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// Logic function of the gate.
    pub gtype: GateType,
    /// Driver gate of each in-pin, in pin order.
    pub fanins: Vec<GateId>,
    /// Instance name (unique within a network when built through the builder
    /// or the BLIF reader).
    pub name: String,
    /// Drive-strength class, `0..4`; interpreted by `rapids-celllib`.
    pub size_class: u8,
    /// Tombstone marker; removed gates keep their slot so ids stay stable.
    pub removed: bool,
}

impl Gate {
    /// Creates a new live gate.
    pub fn new(gtype: GateType, fanins: Vec<GateId>, name: impl Into<String>) -> Self {
        Gate { gtype, fanins, name: name.into(), size_class: 0, removed: false }
    }

    /// Number of in-pins.
    #[inline]
    pub fn fanin_count(&self) -> usize {
        self.fanins.len()
    }

    /// Returns `true` if the gate is a primary input or constant.
    #[inline]
    pub fn is_source(&self) -> bool {
        self.gtype.is_source()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn controlling_values_match_paper() {
        assert_eq!(GateType::And.controlling_value(), Some(Logic::Zero));
        assert_eq!(GateType::Nand.controlling_value(), Some(Logic::Zero));
        assert_eq!(GateType::Or.controlling_value(), Some(Logic::One));
        assert_eq!(GateType::Nor.controlling_value(), Some(Logic::One));
        assert_eq!(GateType::Xor.controlling_value(), None);
        assert_eq!(GateType::Xnor.controlling_value(), None);
        assert_eq!(GateType::Inv.controlling_value(), None);
        assert_eq!(GateType::Buf.controlling_value(), None);
    }

    #[test]
    fn non_controlling_is_complement() {
        for t in [GateType::And, GateType::Or, GateType::Nand, GateType::Nor] {
            let cv = t.controlling_value().unwrap();
            let ncv = t.non_controlling_value().unwrap();
            assert_eq!(cv.complement(), ncv);
        }
    }

    #[test]
    fn controlled_output_values() {
        assert_eq!(GateType::And.controlled_output(), Some(Logic::Zero));
        assert_eq!(GateType::Nand.controlled_output(), Some(Logic::One));
        assert_eq!(GateType::Or.controlled_output(), Some(Logic::One));
        assert_eq!(GateType::Nor.controlled_output(), Some(Logic::Zero));
        assert_eq!(GateType::Xor.controlled_output(), None);
    }

    #[test]
    fn eval_bool_truth_tables() {
        assert!(GateType::And.eval_bool(&[true, true]));
        assert!(!GateType::And.eval_bool(&[true, false]));
        assert!(GateType::Nand.eval_bool(&[true, false]));
        assert!(GateType::Or.eval_bool(&[false, true]));
        assert!(!GateType::Nor.eval_bool(&[false, true]));
        assert!(GateType::Xor.eval_bool(&[true, false, false]));
        assert!(!GateType::Xor.eval_bool(&[true, true, false, false]));
        assert!(GateType::Xnor.eval_bool(&[true, true]));
        assert!(GateType::Inv.eval_bool(&[false]));
        assert!(GateType::Buf.eval_bool(&[true]));
        assert!(!GateType::Const0.eval_bool(&[]));
        assert!(GateType::Const1.eval_bool(&[]));
    }

    #[test]
    fn eval_word_matches_eval_bool() {
        let cases: [(GateType, &[bool]); 6] = [
            (GateType::And, &[true, false, true]),
            (GateType::Or, &[false, false]),
            (GateType::Xor, &[true, true, true]),
            (GateType::Nand, &[true, true]),
            (GateType::Nor, &[false, false, false]),
            (GateType::Xnor, &[true, false]),
        ];
        for (t, bits) in cases {
            let words: Vec<u64> = bits.iter().map(|&b| if b { !0 } else { 0 }).collect();
            let w = t.eval_word(&words);
            let b = t.eval_bool(bits);
            assert_eq!(w == !0, b, "mismatch for {t}");
            assert!(w == 0 || w == !0);
        }
    }

    #[test]
    fn inverted_and_demorgan_forms() {
        assert_eq!(GateType::And.inverted_form(), GateType::Nand);
        assert_eq!(GateType::Nand.inverted_form(), GateType::And);
        assert_eq!(GateType::Xor.inverted_form(), GateType::Xnor);
        assert_eq!(GateType::And.demorgan_dual(), GateType::Or);
        assert_eq!(GateType::Nor.demorgan_dual(), GateType::Nand);
        assert_eq!(GateType::Xor.demorgan_dual(), GateType::Xor);
    }

    #[test]
    fn mnemonic_round_trip() {
        for t in GateType::LOGIC_TYPES {
            assert_eq!(GateType::from_mnemonic(t.mnemonic()), Some(t));
        }
        assert_eq!(GateType::from_mnemonic("bogus"), None);
    }

    #[test]
    fn fanin_ranges() {
        assert!(GateType::Inv.accepts_fanin_count(1));
        assert!(!GateType::Inv.accepts_fanin_count(2));
        assert!(GateType::And.accepts_fanin_count(4));
        assert!(!GateType::And.accepts_fanin_count(1));
        assert!(GateType::Input.accepts_fanin_count(0));
        assert!(!GateType::Input.accepts_fanin_count(1));
    }

    #[test]
    fn logic_ops() {
        assert_eq!(!Logic::Zero, Logic::One);
        assert_eq!(Logic::from_bool(true), Logic::One);
        assert!(Logic::One.to_bool());
        assert_eq!(Logic::One.to_string(), "1");
    }

    #[test]
    fn pinref_display() {
        let p = PinRef::new(GateId(3), 1);
        assert_eq!(p.to_string(), "g3.1");
    }
}
