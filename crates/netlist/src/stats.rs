//! Structural statistics used by the experiment reports (Table 1 columns
//! such as gate count) and by the circuit generators to validate that the
//! synthetic benchmarks land in the intended size regime.

use std::collections::BTreeMap;

use crate::gate::GateType;
use crate::network::Network;
use crate::topo;

/// Summary statistics of a network's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// Number of primary inputs.
    pub input_count: usize,
    /// Number of primary outputs.
    pub output_count: usize,
    /// Number of live logic gates (excludes inputs/constants).
    pub gate_count: usize,
    /// Logic depth (maximum level over output drivers).
    pub depth: usize,
    /// Histogram of gate types.
    pub type_histogram: BTreeMap<&'static str, usize>,
    /// Maximum fan-out degree over all gates.
    pub max_fanout: usize,
    /// Average fan-out degree over logic gates and inputs.
    pub avg_fanout: f64,
    /// Number of gates with a single fan-out (candidates for supergate
    /// membership).
    pub fanout_free_gates: usize,
}

impl NetworkStats {
    /// Computes statistics for a network.
    pub fn compute(network: &Network) -> Self {
        let mut type_histogram: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut max_fanout = 0usize;
        let mut fanout_sum = 0usize;
        let mut fanout_free_gates = 0usize;
        let mut counted = 0usize;
        for id in network.iter_live() {
            let g = network.gate(id);
            if !g.gtype.is_source() {
                *type_histogram.entry(g.gtype.mnemonic()).or_insert(0) += 1;
            }
            let deg = network.fanout_degree(id);
            max_fanout = max_fanout.max(deg);
            fanout_sum += deg;
            counted += 1;
            if !g.gtype.is_source() && deg == 1 {
                fanout_free_gates += 1;
            }
        }
        NetworkStats {
            input_count: network.inputs().len(),
            output_count: network.outputs().len(),
            gate_count: network.logic_gate_count(),
            depth: topo::depth(network),
            type_histogram,
            max_fanout,
            avg_fanout: if counted == 0 { 0.0 } else { fanout_sum as f64 / counted as f64 },
            fanout_free_gates,
        }
    }

    /// Count of a given gate type (0 if absent).
    pub fn count_of(&self, gtype: GateType) -> usize {
        self.type_histogram.get(gtype.mnemonic()).copied().unwrap_or(0)
    }

    /// Fraction of logic gates that are inverters or buffers.
    pub fn inverter_fraction(&self) -> f64 {
        if self.gate_count == 0 {
            return 0.0;
        }
        let inv = self.count_of(GateType::Inv) + self.count_of(GateType::Buf);
        inv as f64 / self.gate_count as f64
    }
}

impl std::fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "inputs={} outputs={} gates={} depth={} max_fanout={} avg_fanout={:.2}",
            self.input_count,
            self.output_count,
            self.gate_count,
            self.depth,
            self.max_fanout,
            self.avg_fanout
        )?;
        for (t, c) in &self.type_histogram {
            writeln!(f, "  {t:>6}: {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    #[test]
    fn stats_of_full_adder() {
        let mut b = NetworkBuilder::new("fa");
        b.inputs(["a", "b", "cin"]);
        b.gate("s1", GateType::Xor, &["a", "b"]);
        b.gate("sum", GateType::Xor, &["s1", "cin"]);
        b.gate("c1", GateType::And, &["a", "b"]);
        b.gate("c2", GateType::And, &["s1", "cin"]);
        b.gate("cout", GateType::Or, &["c1", "c2"]);
        b.output("sum");
        b.output("cout");
        let n = b.finish().unwrap();
        let s = NetworkStats::compute(&n);
        assert_eq!(s.input_count, 3);
        assert_eq!(s.output_count, 2);
        assert_eq!(s.gate_count, 5);
        // sum is at level 2; cout = OR(AND(a,b), AND(XOR(a,b), cin)) is at level 3.
        assert_eq!(s.depth, 3);
        assert_eq!(s.count_of(GateType::Xor), 2);
        assert_eq!(s.count_of(GateType::And), 2);
        assert_eq!(s.count_of(GateType::Or), 1);
        assert_eq!(s.count_of(GateType::Nand), 0);
        // s1 drives two sinks, a and b and cin drive two sinks each.
        assert_eq!(s.max_fanout, 2);
        assert!(s.avg_fanout > 0.0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn inverter_fraction() {
        let mut b = NetworkBuilder::new("inv");
        b.input("a");
        b.gate("x", GateType::Inv, &["a"]);
        b.gate("y", GateType::Buf, &["x"]);
        b.output("y");
        let n = b.finish().unwrap();
        let s = NetworkStats::compute(&n);
        assert!((s.inverter_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_network() {
        let n = Network::new("empty");
        let s = NetworkStats::compute(&n);
        assert_eq!(s.gate_count, 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.inverter_fraction(), 0.0);
    }
}
